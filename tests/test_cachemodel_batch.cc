// Bitwise differential tests of the SoA evaluation kernel: every cell of
// CacheModel::components_batch must reproduce the scalar component() path
// bit for bit, over the paper's 7x5 knob grid and on both the four-component
// and the split-tag/banked organizations.  This is the contract the
// option-table builders (src/opt/options.cc) and the argmin-invariance
// argument in docs/MODELING.md rely on.
#include "cachemodel/cache_model.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cachemodel/component.h"
#include "cachemodel/organization.h"
#include "tech/device.h"
#include "tech/params.h"
#include "util/error.h"

namespace nanocache::cachemodel {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// EXPECT bit equality field by field so a mismatch names the field and the
/// grid cell instead of printing two opaque structs.
void expect_bitwise_equal(const ComponentMetrics& got,
                          const ComponentMetrics& want,
                          const std::string& where) {
  EXPECT_EQ(bits(got.delay_s), bits(want.delay_s)) << where << " delay_s";
  EXPECT_EQ(bits(got.leakage_w), bits(want.leakage_w))
      << where << " leakage_w";
  EXPECT_EQ(bits(got.leakage_sub_w), bits(want.leakage_sub_w))
      << where << " leakage_sub_w";
  EXPECT_EQ(bits(got.leakage_gate_w), bits(want.leakage_gate_w))
      << where << " leakage_gate_w";
  EXPECT_EQ(bits(got.dynamic_energy_j), bits(want.dynamic_energy_j))
      << where << " dynamic_energy_j";
  EXPECT_EQ(bits(got.dynamic_write_energy_j),
            bits(want.dynamic_write_energy_j))
      << where << " dynamic_write_energy_j";
  EXPECT_EQ(bits(got.area_um2), bits(want.area_um2)) << where << " area_um2";
}

/// The paper's option grid: 7 Vth steps x 5 Tox steps spanning the full
/// BPTM-65nm knob range.  Built from integer loop indices so the doubles
/// are reproduced exactly across the scalar and batch calls.
std::vector<tech::DeviceKnobs> paper_grid() {
  std::vector<tech::DeviceKnobs> pairs;
  pairs.reserve(7 * 5);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 5; ++j) {
      pairs.push_back({0.20 + 0.05 * i, 10.0 + 1.0 * j});
    }
  }
  return pairs;
}

void expect_batch_matches_scalar(const CacheModel& model,
                                 const std::vector<ComponentKind>& kinds) {
  const auto pairs = paper_grid();
  const auto batch = model.components_batch(kinds, pairs);
  ASSERT_EQ(batch.size(), kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    ASSERT_EQ(batch[k].size(), pairs.size());
    for (std::size_t r = 0; r < pairs.size(); ++r) {
      const auto scalar = model.component(kinds[k], pairs[r]);
      expect_bitwise_equal(
          batch[k][r], scalar,
          std::string(component_name(kinds[k])) + " @ pair " +
              std::to_string(r));
    }
  }
}

TEST(ComponentsBatch, MatchesScalarOnL1Organization) {
  const tech::DeviceModel dev{tech::bptm65()};
  const CacheModel model(l1_organization(16 * 1024, dev), dev);
  expect_batch_matches_scalar(
      model, {kAllComponents.begin(), kAllComponents.end()});
}

TEST(ComponentsBatch, MatchesScalarOnSplitTagBankedOrganization) {
  const tech::DeviceModel dev{tech::bptm65()};
  // 4-way, 4-bank, split tag: exercises the tag array and way comparators
  // plus the banked geometry, the paths the L1 default never touches.
  const CacheModel model(
      extended_organization(32 * 1024, /*is_l2=*/false, /*associativity=*/4,
                            /*banks=*/4, dev),
      dev);
  expect_batch_matches_scalar(
      model, {kExtendedComponents.begin(), kExtendedComponents.end()});
}

TEST(ComponentsBatch, HonorsKindsSubsetAndOrder) {
  const tech::DeviceModel dev{tech::bptm65()};
  const CacheModel model(l1_organization(16 * 1024, dev), dev);
  // Out-of-enum-order subset: out[k] must follow the caller's order, not
  // the ComponentKind numbering.
  const std::vector<ComponentKind> kinds = {ComponentKind::kDataDrivers,
                                            ComponentKind::kCellArray};
  const auto pairs = paper_grid();
  const auto batch = model.components_batch(kinds, pairs);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t r = 0; r < pairs.size(); ++r) {
    expect_bitwise_equal(batch[0][r],
                         model.component(ComponentKind::kDataDrivers, pairs[r]),
                         "data drivers @ pair " + std::to_string(r));
    expect_bitwise_equal(batch[1][r],
                         model.component(ComponentKind::kCellArray, pairs[r]),
                         "cell array @ pair " + std::to_string(r));
  }
}

TEST(ComponentsBatch, NanKnobFailsExactlyLikeScalar) {
  const tech::DeviceModel dev{tech::bptm65()};
  const CacheModel model(l1_organization(16 * 1024, dev), dev);
  const tech::DeviceKnobs bad{std::nan(""), 12.0};

  std::string scalar_message;
  try {
    model.component(ComponentKind::kCellArray, bad);
    FAIL() << "scalar path accepted a NaN knob";
  } catch (const Error& e) {
    scalar_message = e.what();
  }

  try {
    model.components_batch({ComponentKind::kCellArray}, {{0.30, 12.0}, bad});
    FAIL() << "batch path accepted a NaN knob";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), scalar_message);
  }
}

TEST(ComponentsBatch, EmptyInputsYieldEmptyTables) {
  const tech::DeviceModel dev{tech::bptm65()};
  const CacheModel model(l1_organization(16 * 1024, dev), dev);
  EXPECT_TRUE(model.components_batch({}, paper_grid()).empty());
  const auto no_pairs =
      model.components_batch({ComponentKind::kDecoder}, {});
  ASSERT_EQ(no_pairs.size(), 1u);
  EXPECT_TRUE(no_pairs[0].empty());
}

}  // namespace
}  // namespace nanocache::cachemodel
