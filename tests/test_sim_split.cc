// Tests for the split-L1 extension: instruction-fetch generator, split
// hierarchy, the split-system energy model, and the util stats helpers
// they lean on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/explorer.h"
#include "energy/split_system.h"
#include "sim/generators.h"
#include "sim/hierarchy.h"
#include "util/error.h"
#include "util/stats.h"

namespace nanocache {
namespace {

// --- util stats ---------------------------------------------------------------

TEST(Stats, MeanStddevPercentile) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(math::mean(v), 3.0);
  EXPECT_NEAR(math::sample_stddev(v), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(math::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(math::percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(math::percentile(v, 0.5), 3.0);
}

TEST(Stats, DegenerateCases) {
  EXPECT_THROW(math::mean({}), Error);
  EXPECT_DOUBLE_EQ(math::sample_stddev({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(math::coefficient_of_variation({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(math::coefficient_of_variation({0.0, 0.0}), 0.0);
  EXPECT_THROW(math::percentile({1.0}, 1.5), Error);
}

// --- instruction-fetch generator ------------------------------------------------

TEST(InstructionFetch, MostlySequential) {
  sim::InstructionFetchGenerator::Config cfg;
  sim::InstructionFetchGenerator g(cfg, 11);
  int sequential = 0;
  std::uint64_t prev = g.next().address;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto a = g.next().address;
    if (a == prev + 4) ++sequential;
    prev = a;
  }
  // Mean basic block of 8 -> ~7/8 of steps sequential.
  EXPECT_GT(static_cast<double>(sequential) / n, 0.75);
}

TEST(InstructionFetch, NeverWritesAndStaysInCode) {
  sim::InstructionFetchGenerator::Config cfg;
  cfg.base = 0x1000;
  cfg.code_bytes = 64 * 1024;
  sim::InstructionFetchGenerator g(cfg, 3);
  for (int i = 0; i < 20000; ++i) {
    const auto a = g.next();
    EXPECT_FALSE(a.is_write);
    EXPECT_GE(a.address, cfg.base);
    EXPECT_LT(a.address, cfg.base + cfg.code_bytes);
    EXPECT_EQ(a.address % 4, 0u);  // word-aligned fetches
  }
}

TEST(InstructionFetch, LoopTargetsCreateReuse) {
  sim::InstructionFetchGenerator::Config cfg;
  cfg.code_bytes = 1 << 20;
  sim::InstructionFetchGenerator g(cfg, 5);
  // An I-cache on the stream must hit far more than the footprint alone
  // would suggest: loops concentrate fetches.
  sim::SetAssociativeCache icache(16 * 1024, 32, 2);
  std::uint64_t misses = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!icache.access(g.next().address, false).hit) ++misses;
  }
  EXPECT_LT(static_cast<double>(misses) / n, 0.12);
}

TEST(InstructionFetch, Validates) {
  sim::InstructionFetchGenerator::Config cfg;
  cfg.code_bytes = 1024;  // < 4KB
  EXPECT_THROW(sim::InstructionFetchGenerator(cfg, 1), Error);
  cfg = {};
  cfg.hot_targets = 0;
  EXPECT_THROW(sim::InstructionFetchGenerator(cfg, 1), Error);
}

// --- split hierarchy -------------------------------------------------------------

sim::SplitL1Hierarchy make_split() {
  return sim::SplitL1Hierarchy(sim::SetAssociativeCache(4096, 32, 2),
                               sim::SetAssociativeCache(4096, 32, 2),
                               sim::SetAssociativeCache(64 * 1024, 64, 8));
}

TEST(SplitHierarchy, SidesAreIndependent) {
  auto h = make_split();
  h.access_instruction(0x1000);
  EXPECT_TRUE(h.l1i().contains(0x1000));
  EXPECT_FALSE(h.l1d().contains(0x1000));
  h.access_data(0x1000, false);
  EXPECT_TRUE(h.l1d().contains(0x1000));
}

TEST(SplitHierarchy, SharedL2SeesBothMissStreams) {
  auto h = make_split();
  h.access_instruction(0x2000);
  h.access_data(0x3000, false);
  EXPECT_EQ(h.stats().l2_accesses, 2u);
  EXPECT_TRUE(h.l2().contains(0x2000));
  EXPECT_TRUE(h.l2().contains(0x3000));
}

TEST(SplitHierarchy, CrossSideL2Hit) {
  auto h = make_split();
  h.access_data(0x4000, false);       // brings the line into L2
  const auto before = h.stats().l2_misses;
  h.access_instruction(0x4000);       // I-side miss, L2 hit
  EXPECT_EQ(h.stats().l2_misses, before);
  EXPECT_EQ(h.stats().l1i_misses, 1u);
}

TEST(SplitHierarchy, DirtyDataVictimsReachL2) {
  sim::SplitL1Hierarchy h(sim::SetAssociativeCache(4096, 32, 2),
                          sim::SetAssociativeCache(1024, 32, 1),
                          sim::SetAssociativeCache(64 * 1024, 64, 8));
  h.access_data(0, true);
  h.access_data(1024, false);  // evicts dirty 0 into L2
  EXPECT_TRUE(h.l2().contains(0));
}

TEST(SplitHierarchy, StatsAndReset) {
  auto h = make_split();
  h.access_instruction(0);
  h.access_data(64, true);
  EXPECT_EQ(h.stats().instruction_refs, 1u);
  EXPECT_EQ(h.stats().data_refs, 1u);
  EXPECT_DOUBLE_EQ(h.stats().l1i_miss_rate(), 1.0);
  h.reset_stats();
  EXPECT_EQ(h.stats().instruction_refs, 0u);
  EXPECT_DOUBLE_EQ(h.stats().l1i_miss_rate(), 0.0);
}

TEST(SplitHierarchy, ValidatesGeometry) {
  EXPECT_THROW(
      sim::SplitL1Hierarchy(sim::SetAssociativeCache(64 * 1024, 32, 2),
                            sim::SetAssociativeCache(64 * 1024, 32, 2),
                            sim::SetAssociativeCache(64 * 1024, 64, 8)),
      Error);
}

// --- split-system energy model -----------------------------------------------------

TEST(SplitSystem, AmatBlendsSides) {
  core::Explorer ex;
  const auto& l1 = ex.l1_model(16 * 1024);
  const auto& l2 = ex.l2_model(1024 * 1024);
  energy::SplitMissRates miss;
  miss.instruction_fraction = 0.5;
  miss.l1i = 0.0;
  miss.l1d = 0.0;
  const energy::SplitMemorySystemModel sys(l1, l1, l2, miss);
  const cachemodel::ComponentAssignment k(tech::DeviceKnobs{0.35, 12.0});
  const auto m = sys.evaluate(k, k, k);
  // With zero L1 miss rates, AMAT is just the blended L1 hit time.
  EXPECT_NEAR(m.amat_s, l1.evaluate(k).access_time_s,
              m.amat_s * 1e-9);
}

TEST(SplitSystem, LeakageSumsThreeCaches) {
  core::Explorer ex;
  const auto& l1 = ex.l1_model(16 * 1024);
  const auto& l2 = ex.l2_model(512 * 1024);
  const energy::SplitMemorySystemModel sys(l1, l1, l2, {});
  const cachemodel::ComponentAssignment k(tech::DeviceKnobs{0.4, 13.0});
  const auto m = sys.evaluate(k, k, k);
  EXPECT_NEAR(m.leakage_w,
              2 * l1.evaluate(k).leakage_w + l2.evaluate(k).leakage_w,
              m.leakage_w * 1e-9);
}

TEST(SplitSystem, L2WeightMatchesDefinition) {
  core::Explorer ex;
  energy::SplitMissRates miss;
  miss.instruction_fraction = 0.25;
  miss.l1i = 0.02;
  miss.l1d = 0.08;
  const energy::SplitMemorySystemModel sys(ex.l1_model(16 * 1024),
                                           ex.l1_model(16 * 1024),
                                           ex.l2_model(512 * 1024), miss);
  EXPECT_NEAR(sys.l2_weight(), 0.25 * 0.02 + 0.75 * 0.08, 1e-12);
}

TEST(SplitSystem, Validates) {
  core::Explorer ex;
  energy::SplitMissRates bad;
  bad.instruction_fraction = 1.5;
  EXPECT_THROW(energy::SplitMemorySystemModel(ex.l1_model(16 * 1024),
                                              ex.l1_model(16 * 1024),
                                              ex.l2_model(512 * 1024), bad),
               Error);
}

}  // namespace
}  // namespace nanocache
