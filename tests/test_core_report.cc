// Tests for the reporting layer: long-format tables, CSV export artifacts,
// and the technology-override (ablation) path through ExperimentConfig.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.h"
#include "util/error.h"

namespace nanocache::core {
namespace {

Explorer& explorer() {
  static Explorer e;
  return e;
}

TEST(Report, Fig1LongTableOneRowPerPoint) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 5);
  const auto t = fig1_long_table(series);
  EXPECT_EQ(t.row_count(), 4u * 5u);
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("Tox=10A"), std::string::npos);
  EXPECT_NE(csv.find("Vth=400mV"), std::string::npos);
}

TEST(Report, SchemeLongTableThreeRowsPerTarget) {
  const auto ladder = explorer().delay_ladder(16 * 1024, 3);
  const auto rows = explorer().scheme_comparison(16 * 1024, ladder);
  const auto t = scheme_long_table(rows);
  EXPECT_EQ(t.row_count(), 3u * 3u);
}

TEST(Report, SizeSweepTableMarksInfeasible) {
  std::vector<SizeSweepRow> rows(2);
  rows[0].size_bytes = 4096;
  rows[0].feasible = false;
  rows[1].size_bytes = 8192;
  rows[1].feasible = true;
  rows[1].level_leakage_w = 1e-3;
  rows[1].total_leakage_w = 2e-3;
  rows[1].amat_s = 1.5e-9;
  const auto csv = size_sweep_table(rows, "l1").to_csv();
  std::istringstream is(csv);
  std::string header, r0, r1;
  std::getline(is, header);
  std::getline(is, r0);
  std::getline(is, r1);
  EXPECT_NE(r0.find(",0,"), std::string::npos);  // feasible flag 0
  EXPECT_NE(r1.find(",1,"), std::string::npos);
  EXPECT_NE(r1.find("1500.0"), std::string::npos);
}

TEST(Report, Fig2LongTableLabelsMenus) {
  // Small synthetic series to keep this test fast.
  std::vector<Fig2Series> series(1);
  series[0].label = "2 Tox + 2 Vth";
  opt::SystemDesignPoint p;
  p.amat_s = 1.5e-9;
  p.energy_j = 150e-12;
  p.leakage_w = 80e-3;
  series[0].points.push_back(p);
  const auto csv = fig2_long_table(series).to_csv();
  EXPECT_NE(csv.find("2 Tox + 2 Vth,1500.0,150.00,80.00"), std::string::npos);
}

TEST(Report, ExportAllCsvWritesSevenFiles) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nanocache_report_test";
  std::filesystem::remove_all(dir);
  const int n = export_all_csv(explorer(), dir.string());
  EXPECT_EQ(n, 7);
  for (const char* name :
       {"fig1.csv", "scheme_comparison.csv", "l2_sweep_uniform.csv",
        "l2_sweep_split.csv", "l1_sweep.csv", "fig2.csv"}) {
    const auto path = dir / name;
    ASSERT_TRUE(std::filesystem::exists(path)) << name;
    EXPECT_GT(std::filesystem::file_size(path), 50u) << name;
    // Header line plus at least one data row.
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_GE(lines, 2) << name;
  }
  // The degradation log is always exported; on the structural path it is
  // header-only.
  EXPECT_TRUE(std::filesystem::exists(dir / "degradation.csv"));
  std::filesystem::remove_all(dir);
}

// --- technology override (the ablation path) --------------------------------

TEST(ConfigTechnology, OverrideChangesModels) {
  ExperimentConfig hot;
  hot.technology.temperature_k = 400.0;
  Explorer hot_explorer(hot);
  const double hot_leak =
      hot_explorer.l1_model(16 * 1024).evaluate_uniform({0.3, 14.0}).leakage_w;
  const double ref_leak =
      explorer().l1_model(16 * 1024).evaluate_uniform({0.3, 14.0}).leakage_w;
  EXPECT_GT(hot_leak, ref_leak * 1.2);  // subthreshold grows with T
}

TEST(ConfigTechnology, InvalidOverrideRejected) {
  ExperimentConfig bad;
  bad.technology.vdd_v = -1.0;
  EXPECT_THROW(Explorer e(bad), nanocache::Error);
}

TEST(ConfigTechnology, AreaScalingOffFreezesArea) {
  ExperimentConfig cfg;
  cfg.technology.area_scaling_enabled = false;
  Explorer frozen(cfg);
  const auto& m = frozen.l1_model(16 * 1024);
  EXPECT_DOUBLE_EQ(m.evaluate_uniform({0.3, 10.0}).area_um2,
                   m.evaluate_uniform({0.3, 14.0}).area_um2);
}

}  // namespace
}  // namespace nanocache::core
