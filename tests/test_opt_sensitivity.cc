// Tests for the knob-sensitivity module: signs, magnitudes, consistency
// with the closed forms, and the Figure 1 leverage story expressed as
// derivatives.
#include <gtest/gtest.h>

#include <memory>

#include "opt/sensitivity.h"
#include "util/error.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentKind;

const CacheModel& cache16k() {
  static auto model = [] {
    tech::DeviceModel dev(tech::bptm65());
    return std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
  }();
  return *model;
}

tech::KnobRange range() { return tech::bptm65().knobs; }

TEST(Sensitivity, SignsMatchPhysics) {
  const auto eval = structural_evaluator(cache16k());
  for (const auto& at : {tech::DeviceKnobs{0.25, 11.0},
                         tech::DeviceKnobs{0.35, 12.0},
                         tech::DeviceKnobs{0.45, 13.0}}) {
    const auto s = cache_sensitivity(eval, at, range());
    EXPECT_LT(s.leakage_vs_vth, 0.0);
    EXPECT_LT(s.leakage_vs_tox, 0.0);
    EXPECT_GT(s.delay_vs_vth, 0.0);
    EXPECT_GT(s.delay_vs_tox, 0.0);
  }
}

TEST(Sensitivity, ToxMoreEfficientLeakageKnob) {
  // Leakage bought per delay given up: Tox wins across the mid grid —
  // the quantitative form of "set Tox conservatively, tune with Vth".
  const auto eval = structural_evaluator(cache16k());
  for (const auto& at : {tech::DeviceKnobs{0.35, 11.0},
                         tech::DeviceKnobs{0.40, 12.0}}) {
    const auto s = cache_sensitivity(eval, at, range());
    EXPECT_GT(s.leakage_efficiency_tox(), s.leakage_efficiency_vth());
  }
}

TEST(Sensitivity, VthLeakageSlopeFadesAtThinToxHighVth) {
  // The gate floor: at (high Vth, thin Tox), raising Vth further barely
  // changes total leakage.
  const auto eval = structural_evaluator(cache16k());
  const auto low = cache_sensitivity(eval, {0.25, 10.0}, range());
  const auto high = cache_sensitivity(eval, {0.45, 10.0}, range());
  EXPECT_GT(std::abs(low.leakage_vs_vth), 4.0 * std::abs(high.leakage_vs_vth));
}

TEST(Sensitivity, SubthresholdSlopeMatchesDeviceModel) {
  // At thick Tox and low Vth, total leakage is almost pure subthreshold;
  // the log-slope must approach -1/(n*vT).
  const auto eval = structural_evaluator(cache16k());
  const auto s = cache_sensitivity(eval, {0.22, 14.0}, range());
  const auto p = tech::bptm65();
  const double expected =
      -1.0 / (p.subthreshold_ideality_n * p.thermal_voltage_v());
  EXPECT_NEAR(s.leakage_vs_vth / expected, 1.0, 0.25);
}

TEST(Sensitivity, ComponentAndCacheViewsConsistent) {
  // The array dominates cache leakage, so the cache-level Vth slope must
  // sit near the array's.
  const auto eval = structural_evaluator(cache16k());
  const tech::DeviceKnobs at{0.30, 12.0};
  const auto whole = cache_sensitivity(eval, at, range());
  const auto array = component_sensitivity(eval, ComponentKind::kCellArray,
                                           at, range());
  EXPECT_NEAR(whole.leakage_vs_vth / array.leakage_vs_vth, 1.0, 0.35);
}

TEST(Sensitivity, StencilClampsAtBounds) {
  const auto eval = structural_evaluator(cache16k());
  // Operating points exactly on the knob bounds must not throw.
  EXPECT_NO_THROW(cache_sensitivity(eval, {0.20, 10.0}, range()));
  EXPECT_NO_THROW(cache_sensitivity(eval, {0.50, 14.0}, range()));
}

TEST(Sensitivity, RejectsBadInputs) {
  const auto eval = structural_evaluator(cache16k());
  EXPECT_THROW(cache_sensitivity(eval, {0.10, 12.0}, range()), Error);
  EXPECT_THROW(
      cache_sensitivity(eval, {0.30, 12.0}, range(), /*vth_step=*/-0.01),
      Error);
}

TEST(Sensitivity, MapCoversGrid) {
  const auto eval = structural_evaluator(cache16k());
  KnobGrid g;
  g.vth_values = {0.25, 0.35, 0.45};
  g.tox_values = {11.0, 13.0};
  const auto map = sensitivity_map(eval, g, range());
  ASSERT_EQ(map.size(), 6u);
  for (const auto& s : map) {
    EXPECT_LT(s.leakage_vs_vth, 0.0);
    EXPECT_GT(s.delay_vs_vth, 0.0);
  }
}

TEST(Sensitivity, EfficiencyThrowsOnDegenerateDelay) {
  KnobSensitivity s;
  s.delay_vs_vth = 0.0;
  EXPECT_THROW(s.leakage_efficiency_vth(), Error);
}

}  // namespace
}  // namespace nanocache::opt
