// Tests for the ASCII chart renderer.
#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/error.h"

namespace nanocache {
namespace {

TEST(AsciiChart, RendersMarkersAndLegend) {
  AsciiChart c(40, 10);
  c.add_series("up", {0, 1, 2}, {0, 1, 2});
  c.add_series("down", {0, 1, 2}, {2, 1, 0});
  const std::string out = c.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("up"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
}

TEST(AsciiChart, CrossingSeriesOverlapMark) {
  AsciiChart c(41, 11);
  c.add_series("a", {0, 1, 2}, {0, 1, 2});
  c.add_series("b", {0, 1, 2}, {2, 1, 0});
  // Both series pass through (1,1): overlap renders as '&'.
  EXPECT_NE(c.render().find('&'), std::string::npos);
}

TEST(AsciiChart, TitleAndAxisLabelsShown) {
  AsciiChart c(40, 10);
  c.set_title("the title");
  c.set_x_label("xx");
  c.set_y_label("yy");
  c.add_series("s", {0, 10}, {5, 6});
  const std::string out = c.render();
  EXPECT_EQ(out.find("the title"), 0u);
  EXPECT_NE(out.find("x: xx"), std::string::npos);
  EXPECT_NE(out.find("y: yy"), std::string::npos);
}

TEST(AsciiChart, TickValuesSpanData) {
  AsciiChart c(40, 10);
  c.add_series("s", {100, 300}, {1, 9});
  const std::string out = c.render();
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("300"), std::string::npos);
  EXPECT_NE(out.find("9.0"), std::string::npos);
  EXPECT_NE(out.find("1.0"), std::string::npos);
}

TEST(AsciiChart, LogScaleMentionedAndPositive) {
  AsciiChart c(40, 10);
  c.set_log_y(true);
  c.set_y_label("p");
  c.add_series("s", {0, 1}, {1.0, 1000.0});
  EXPECT_NE(c.render().find("log scale"), std::string::npos);

  AsciiChart bad(40, 10);
  bad.set_log_y(true);
  bad.add_series("s", {0, 1}, {0.0, 1.0});
  EXPECT_THROW(bad.render(), Error);
}

TEST(AsciiChart, DegenerateRangesHandled) {
  AsciiChart c(40, 10);
  c.add_series("flat", {1, 2, 3}, {5, 5, 5});  // zero y-range
  EXPECT_NO_THROW(c.render());
  AsciiChart c2(40, 10);
  c2.add_series("point", {1}, {5});
  EXPECT_NO_THROW(c2.render());
}

TEST(AsciiChart, Validates) {
  EXPECT_THROW(AsciiChart(4, 10), Error);
  EXPECT_THROW(AsciiChart(40, 2), Error);
  AsciiChart c(40, 10);
  EXPECT_THROW(c.render(), Error);  // no series
  EXPECT_THROW(c.add_series("bad", {1, 2}, {1}), Error);
  EXPECT_THROW(c.add_series("empty", {}, {}), Error);
}

}  // namespace
}  // namespace nanocache
