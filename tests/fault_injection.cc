#include "fault_injection.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "cachemodel/cache_model.h"
#include "cachemodel/fitted_cache.h"
#include "cachemodel/organization.h"
#include "core/explorer.h"
#include "energy/memory_system.h"
#include "opt/anneal.h"
#include "opt/continuous.h"
#include "opt/grid.h"
#include "opt/options.h"
#include "opt/outcome.h"
#include "opt/schemes.h"
#include "sim/missmodel.h"
#include "sim/trace_io.h"
#include "tech/characterize.h"
#include "tech/fitted.h"
#include "tech/params.h"
#include "util/numeric_guard.h"

namespace nanocache::testing {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- shared fixtures (built once; the registry runs many faults) ------------

const cachemodel::CacheModel& small_cache() {
  static tech::DeviceModel dev(tech::bptm65());
  static cachemodel::CacheModel model(cachemodel::l1_organization(4096, dev),
                                      tech::DeviceModel(dev.params()));
  return model;
}

const cachemodel::CacheModel& small_l2() {
  static tech::DeviceModel dev(tech::bptm65());
  static cachemodel::CacheModel model(
      cachemodel::l2_organization(256 * 1024, dev),
      tech::DeviceModel(dev.params()));
  return model;
}

const cachemodel::FittedCacheModel& small_fits() {
  static cachemodel::FittedCacheModel fits =
      cachemodel::FittedCacheModel::fit(small_cache());
  return fits;
}

/// Healthy characterization samples a leakage/delay fit accepts; faults
/// corrupt copies of these.
std::vector<tech::KnobSample> good_samples() {
  std::vector<tech::KnobSample> s;
  for (double vth : {0.20, 0.30, 0.40, 0.50}) {
    for (double tox : {10.0, 12.0, 14.0}) {
      s.push_back({tech::DeviceKnobs{vth, tox},
                   std::exp(-6.0 * vth) + std::exp(-1.0 * tox)});
    }
  }
  return s;
}

/// Write `content` to a fresh file under the system temp directory and
/// return its path.  Files are tiny and the directory is cleaned by the OS;
/// a per-process counter keeps names unique.
std::string temp_trace(const std::string& content) {
  static int counter = 0;
  const auto path = std::filesystem::temp_directory_path() /
                    ("nanocache_fault_" + std::to_string(++counter) + ".trc");
  std::ofstream out(path);
  out << content;
  out.close();
  return path.string();
}

void add(std::vector<FaultCase>& cases, std::string name,
         ErrorCategory expected, std::function<void()> inject) {
  cases.push_back(FaultCase{std::move(name), expected, std::move(inject)});
}

}  // namespace

FaultOutcome run_fault(const FaultCase& fault) {
  FaultOutcome out;
  out.name = fault.name;
  out.expected = fault.expected;
  try {
    fault.inject();
    out.detail = "no exception thrown";
  } catch (const Error& e) {
    out.actual = e.category();
    if (out.actual == out.expected) {
      out.ok = true;
      out.detail = e.what();
    } else {
      out.detail = std::string("wrong category: expected ") +
                   category_name(out.expected) + ", got " + e.what();
    }
  } catch (const std::exception& e) {
    out.detail = std::string("escaped as untyped std::exception: ") + e.what();
  } catch (...) {
    out.detail = "escaped as a non-standard exception";
  }
  return out;
}

std::vector<FaultOutcome> run_all(const std::vector<FaultCase>& cases) {
  std::vector<FaultOutcome> outcomes;
  outcomes.reserve(cases.size());
  for (const auto& c : cases) outcomes.push_back(run_fault(c));
  return outcomes;
}

std::vector<FaultCase> build_standard_faults() {
  using EC = ErrorCategory;
  std::vector<FaultCase> cases;

  // --- numeric guards ---------------------------------------------------
  add(cases, "guard-exp-overflow", EC::kNumericDomain,
      [] { num::checked_exp(800.0, "test exponent"); });
  add(cases, "guard-log-nonpositive", EC::kNumericDomain,
      [] { num::checked_log(0.0, "test log argument"); });
  add(cases, "guard-positive-rejects-negative", EC::kNumericDomain,
      [] { num::ensure_positive(-1.0, "test quantity"); });
  add(cases, "guard-finite-rejects-nan", EC::kNumericDomain,
      [] { num::ensure_finite(kNaN, "test quantity"); });

  // --- model fitting ----------------------------------------------------
  add(cases, "fit-leakage-nan-vth", EC::kNumericDomain, [] {
    auto s = good_samples();
    s[3].knobs.vth_v = kNaN;
    tech::FittedLeakageModel::fit(s);
  });
  add(cases, "fit-leakage-inf-value", EC::kNumericDomain, [] {
    auto s = good_samples();
    s[5].value = kInf;
    tech::FittedLeakageModel::fit(s);
  });
  add(cases, "fit-delay-nan-tox", EC::kNumericDomain, [] {
    auto s = good_samples();
    s[0].knobs.tox_a = kNaN;
    tech::FittedDelayModel::fit(s);
  });
  add(cases, "fit-too-few-samples", EC::kConfig, [] {
    auto s = good_samples();
    s.resize(3);
    tech::FittedLeakageModel::fit(s);
  });
  add(cases, "fit-domain-no-samples", EC::kConfig,
      [] { tech::FitDomain::from_samples({}); });
  add(cases, "fit-domain-nan-knob", EC::kNumericDomain, [] {
    auto s = good_samples();
    s[1].knobs.tox_a = kNaN;
    tech::FitDomain::from_samples(s);
  });
  add(cases, "fitted-eval-outside-domain", EC::kNumericDomain, [] {
    small_fits().component_leakage_checked_w(
        cachemodel::ComponentKind::kCellArray, tech::DeviceKnobs{0.9, 12.0});
  });
  add(cases, "fitted-eval-nan-knob", EC::kNumericDomain, [] {
    small_fits().component_delay_checked_s(
        cachemodel::ComponentKind::kCellArray, tech::DeviceKnobs{kNaN, 12.0});
  });

  // --- cache organization -----------------------------------------------
  add(cases, "org-zero-size", EC::kConfig, [] {
    cachemodel::CacheOrganization org;
    org.size_bytes = 0;
    org.validate();
  });
  add(cases, "org-zero-block", EC::kConfig, [] {
    cachemodel::CacheOrganization org;
    org.block_bytes = 0;
    org.validate();
  });
  add(cases, "org-zero-associativity", EC::kConfig, [] {
    cachemodel::CacheOrganization org;
    org.associativity = 0;
    org.validate();
  });
  add(cases, "org-partition-not-power-of-two", EC::kConfig, [] {
    cachemodel::CacheOrganization org;
    org.ndwl = 3;
    org.validate();
  });
  add(cases, "org-invalid-bank-count", EC::kConfig, [] {
    tech::DeviceModel dev(tech::bptm65());
    cachemodel::extended_organization(16 * 1024, false, 2, 3, dev);
  });
  add(cases, "org-extended-bad-associativity", EC::kConfig, [] {
    tech::DeviceModel dev(tech::bptm65());
    cachemodel::extended_organization(16 * 1024, false, 16, 1, dev);
  });

  // --- technology parameters --------------------------------------------
  add(cases, "tech-negative-vdd", EC::kConfig, [] {
    auto p = tech::bptm65();
    p.vdd_v = -1.0;
    p.validate();
  });
  add(cases, "tech-inverted-vth-range", EC::kConfig, [] {
    auto p = tech::bptm65();
    p.knobs.vth_min_v = 0.5;
    p.knobs.vth_max_v = 0.2;
    p.validate();
  });
  add(cases, "tech-temperature-out-of-range", EC::kConfig, [] {
    auto p = tech::bptm65();
    p.temperature_k = 1000.0;
    p.validate();
  });
  add(cases, "tech-unknown-node", EC::kConfig,
      [] { tech::node_params(17); });

  // --- memory-system model ----------------------------------------------
  add(cases, "system-nan-miss-rate", EC::kNumericDomain, [] {
    energy::MissRates miss;
    miss.l1 = kNaN;
    energy::MemorySystemModel(small_cache(), small_l2(), miss);
  });
  add(cases, "system-miss-rate-above-one", EC::kConfig, [] {
    energy::MissRates miss;
    miss.l1 = 1.5;
    energy::MemorySystemModel(small_cache(), small_l2(), miss);
  });
  add(cases, "system-nan-memory-latency", EC::kNumericDomain, [] {
    energy::MainMemoryParams mem;
    mem.access_latency_s = kNaN;
    energy::MemorySystemModel(small_cache(), small_l2(), {}, mem);
  });
  add(cases, "system-negative-memory-energy", EC::kConfig, [] {
    energy::MainMemoryParams mem;
    mem.access_energy_j = -1.0;
    energy::MemorySystemModel(small_cache(), small_l2(), {}, mem);
  });
  add(cases, "system-evaluate-nan-knobs", EC::kNumericDomain, [] {
    const energy::MemorySystemModel system(small_cache(), small_l2(), {});
    system.evaluate(
        cachemodel::ComponentAssignment(tech::DeviceKnobs{kNaN, 12.0}),
        cachemodel::ComponentAssignment(tech::DeviceKnobs{0.35, 12.0}));
  });

  // --- trace I/O ---------------------------------------------------------
  add(cases, "trace-missing-file", EC::kIo, [] {
    sim::load_trace("/nonexistent_nanocache_dir/missing.trc");
  });
  add(cases, "trace-no-accesses", EC::kIo, [] {
    sim::load_trace(temp_trace("# only a comment\n\n"));
  });
  add(cases, "trace-garbage-kind", EC::kIo, [] {
    sim::load_trace(temp_trace("R 1f\nX 2a\n"));
  });
  add(cases, "trace-truncated-line", EC::kIo, [] {
    sim::load_trace(temp_trace("R 1f\nR\n"));
  });
  add(cases, "trace-bad-hex-address", EC::kIo, [] {
    sim::load_trace(temp_trace("R zz9\n"));
  });
  add(cases, "trace-crlf-garbage-kind", EC::kIo, [] {
    sim::load_trace(temp_trace("Q 1f\r\n"));
  });
  add(cases, "trace-over-access-limit", EC::kIo, [] {
    sim::TraceLoadOptions limit;
    limit.max_accesses = 2;
    sim::load_trace(temp_trace("R 1\nW 2\nR 3\n"), limit);
  });
  add(cases, "trace-zero-access-limit", EC::kConfig, [] {
    sim::TraceLoadOptions limit;
    limit.max_accesses = 0;
    sim::load_trace(temp_trace("R 1\n"), limit);
  });
  add(cases, "trace-save-unwritable-path", EC::kIo, [] {
    sim::VectorTrace trace({{0x10, false}});
    sim::save_trace(trace, 1, "/nonexistent_nanocache_dir/out.trc");
  });

  // --- miss models --------------------------------------------------------
  add(cases, "miss-curve-non-monotone", EC::kConfig, [] {
    sim::PowerLawMissModel::fit({4096, 8192, 16384}, {0.05, 0.08, 0.12});
  });
  add(cases, "miss-model-m0-above-one", EC::kConfig,
      [] { sim::PowerLawMissModel(1.5, 4096, 0.5, 0.0); });

  // --- optimizer inputs and infeasible outcomes ---------------------------
  add(cases, "grid-empty-axis", EC::kConfig, [] {
    opt::KnobGrid grid;
    grid.tox_values = {10.0, 12.0};
    grid.validate();
  });
  add(cases, "grid-non-increasing-axis", EC::kConfig, [] {
    opt::KnobGrid grid;
    grid.vth_values = {0.3, 0.2};
    grid.tox_values = {10.0, 12.0};
    grid.validate();
  });
  add(cases, "grid-nan-value", EC::kNumericDomain, [] {
    opt::KnobGrid grid;
    grid.vth_values = {0.2, kNaN};
    grid.tox_values = {10.0, 12.0};
    grid.validate();
  });
  add(cases, "subset-size-zero", EC::kConfig,
      [] { opt::choose_subsets({0.2, 0.3}, 0); });
  add(cases, "optimize-impossible-delay-deref", EC::kInfeasible, [] {
    const auto r = opt::optimize_single_cache(
        opt::structural_evaluator(small_cache()),
        opt::KnobGrid::paper_default(), opt::Scheme::kUniform, 1e-15);
    *r;  // dereferencing an infeasible outcome must throw, not crash
  });
  add(cases, "anneal-impossible-delay-deref", EC::kInfeasible, [] {
    opt::AnnealConfig cfg;
    cfg.iterations = 200;
    const auto r = opt::anneal_single_cache(
        opt::structural_evaluator(small_cache()),
        opt::KnobGrid::paper_default(), opt::Scheme::kUniform, 1e-15, cfg);
    r.value();
  });
  add(cases, "continuous-impossible-delay-deref", EC::kInfeasible, [] {
    const auto r = opt::optimize_continuous(
        small_fits(), tech::bptm65().knobs, opt::Scheme::kUniform, 1e-15);
    r.value();
  });
  add(cases, "outcome-why-on-feasible", EC::kInternal, [] {
    const opt::OptOutcome<int> feasible(7);
    feasible.why();
  });
  add(cases, "outcome-default-deref", EC::kInfeasible, [] {
    const opt::OptOutcome<opt::SchemeResult> unsolved;
    *unsolved;
  });

  // --- experiment configuration -------------------------------------------
  add(cases, "config-l1-too-small", EC::kConfig, [] {
    core::ExperimentConfig cfg;
    cfg.l1_size_bytes = 16;
    core::Explorer e(cfg);
  });
  add(cases, "config-l2-not-larger-than-l1", EC::kConfig, [] {
    core::ExperimentConfig cfg;
    cfg.l2_size_bytes = cfg.l1_size_bytes;
    core::Explorer e(cfg);
  });
  add(cases, "config-r2-floor-above-one", EC::kConfig, [] {
    core::ExperimentConfig cfg;
    cfg.fitted_r2_floor = 1.5;
    core::Explorer e(cfg);
  });
  add(cases, "fig1-single-step-sweep", EC::kConfig, [] {
    static core::Explorer explorer;
    explorer.fig1_fixed_knob(16 * 1024, 1);
  });

  return cases;
}

}  // namespace nanocache::testing
