// The surrogate serving tier, end to end: precompute -> store -> routed
// serving.  Covers the differential contract (every surrogate answer's
// measured error against the exact engine stays within its certified
// bound; on-lattice answers are bit-exact), byte-stability across thread
// counts and table reloads, the v4 exactness routing matrix (exact pin,
// auto fallback on uncovered requests, typed kConfig for an uncoverable
// surrogate pin), the corruption contract (truncated/garbage tables
// degrade to exact serving, never to a wrong answer; only an unusable
// surrogate_dir is a typed kIo), wire round-trips of served_by/max_error,
// canonical-key exactness semantics, and the capabilities coverage report.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/batch_io.h"
#include "api/surrogate_precompute.h"
#include "nanocache/api.h"
#include "util/parallel.h"

namespace nanocache::api {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the GTest temp root.
fs::path test_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("nanocache_" + name);
  fs::remove_all(dir);
  return dir;
}

std::shared_ptr<Service> make_service(ServiceConfig config = {}) {
  auto service = Service::create(std::move(config));
  EXPECT_TRUE(service.ok()) << service.error().message;
  return service.value();
}

/// Precompute tables for the default configuration into `dir`.  The
/// reduced ladder keeps the exact optimizer work in the milliseconds.
PrecomputeSummary precompute_into(const fs::path& dir, int vth_steps = 13,
                                  int tox_steps = 9, int target_steps = 9) {
  const auto service = make_service();
  PrecomputeOptions options;
  options.vth_steps = vth_steps;
  options.tox_steps = tox_steps;
  options.target_steps = target_steps;
  options.stamp = "test-segment";
  return precompute_surrogate(*service, dir.string(), options);
}

std::shared_ptr<Service> surrogate_service(const fs::path& dir) {
  ServiceConfig config;
  config.surrogate_dir = dir.string();
  return make_service(std::move(config));
}

Request eval_request(double vth_v, double tox_a,
                     Exactness exactness = Exactness::kAuto,
                     std::uint64_t size_bytes = 0) {
  Request r;
  r.kind = RequestKind::kEval;
  r.eval.target.size_bytes = size_bytes;
  r.eval.knobs = Knobs{vth_v, tox_a};
  r.eval.exactness = exactness;
  return r;
}

Request optimize_request(double target_ps,
                         Exactness exactness = Exactness::kAuto,
                         SchemeId scheme = SchemeId::kII) {
  Request r;
  r.kind = RequestKind::kOptimize;
  r.optimize.scheme = scheme;
  r.optimize.delay.target_ps = target_ps;
  r.optimize.exactness = exactness;
  return r;
}

/// Restores the worker-pool default on scope exit (mirrors the golden
/// tests: thread-count experiments must not leak into later tests).
class ThreadCountGuard {
 public:
  ThreadCountGuard() : before_(par::default_threads()) {}
  ~ThreadCountGuard() { par::set_default_threads(before_); }

 private:
  int before_;
};

TEST(SurrogateDifferential, EvalErrorWithinCertifiedBound) {
  const auto dir = test_dir("diff_eval");
  const auto summary = precompute_into(dir);
  ASSERT_GT(summary.eval_tables, 0u);
  const auto surrogate = surrogate_service(dir);

  // The paper's 7x5 grid points are on the refined lattice: surrogate
  // answers there must be bit-exact.  Off-lattice probes (cell quarter
  // points and irregular knobs) must stay within the per-answer bound.
  const std::vector<double> grid_vth{0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
  const std::vector<double> grid_tox{10, 11, 12, 13, 14};
  for (const double vth : grid_vth) {
    for (const double tox : grid_tox) {
      const auto sur = surrogate->serve(eval_request(vth, tox));
      const auto exact =
          surrogate->serve(eval_request(vth, tox, Exactness::kExact));
      ASSERT_TRUE(sur.ok && exact.ok);
      ASSERT_EQ(sur.served_by, ServedBy::kSurrogate);
      EXPECT_EQ(sur.eval.leakage_mw, exact.eval.leakage_mw);
      EXPECT_EQ(sur.eval.access_time_ps, exact.eval.access_time_ps);
      EXPECT_EQ(sur.eval.dynamic_pj, exact.eval.dynamic_pj);
      EXPECT_EQ(sur.eval.area_um2, exact.eval.area_um2);
    }
  }

  const std::vector<Knobs> off_lattice{{0.33, 11.7},  {0.2062, 10.31},
                                       {0.487, 13.93}, {0.31, 12.49},
                                       {0.41, 10.06},  {0.26, 13.51}};
  for (const auto& knobs : off_lattice) {
    const auto sur = surrogate->serve(eval_request(knobs.vth_v, knobs.tox_a));
    const auto exact = surrogate->serve(
        eval_request(knobs.vth_v, knobs.tox_a, Exactness::kExact));
    ASSERT_TRUE(sur.ok && exact.ok);
    ASSERT_EQ(sur.served_by, ServedBy::kSurrogate);
    EXPECT_LE(std::abs(sur.eval.leakage_mw - exact.eval.leakage_mw),
              sur.max_error.leakage_mw)
        << "vth=" << knobs.vth_v << " tox=" << knobs.tox_a;
    EXPECT_LE(std::abs(sur.eval.access_time_ps - exact.eval.access_time_ps),
              sur.max_error.access_time_ps);
    EXPECT_LE(std::abs(sur.eval.dynamic_pj - exact.eval.dynamic_pj),
              sur.max_error.dynamic_pj);
  }
}

TEST(SurrogateDifferential, OptimizeStaysFeasibleWithinLeakageBound) {
  const auto dir = test_dir("diff_opt");
  ASSERT_GT(precompute_into(dir).optimize_tables, 0u);
  const auto surrogate = surrogate_service(dir);

  for (const SchemeId scheme :
       {SchemeId::kI, SchemeId::kII, SchemeId::kIII}) {
    for (const double target_ps : {1350.0, 1400.0, 1522.7, 1650.0}) {
      const auto sur = surrogate->serve(
          optimize_request(target_ps, Exactness::kAuto, scheme));
      ASSERT_TRUE(sur.ok) << sur.error.message;
      if (sur.served_by != ServedBy::kSurrogate) continue;  // off the ladder
      const auto exact = surrogate->serve(
          optimize_request(target_ps, Exactness::kExact, scheme));
      ASSERT_TRUE(exact.ok && exact.optimize.result.feasible);
      // The served design is feasible for the request and its leakage
      // over-estimates the true optimum by at most the certified bound.
      EXPECT_LE(sur.optimize.result.access_time_ps, target_ps);
      EXPECT_EQ(sur.max_error.access_time_ps, 0.0);
      EXPECT_EQ(sur.max_error.dynamic_pj, 0.0);
      const double excess =
          sur.optimize.result.leakage_mw - exact.optimize.result.leakage_mw;
      EXPECT_GE(excess, -1e-12);
      EXPECT_LE(excess, sur.max_error.leakage_mw + 1e-12);
    }
  }
}

TEST(SurrogateDifferential, ByteStableAcrossThreadCountsAndReload) {
  const auto dir = test_dir("diff_stable");
  precompute_into(dir);

  std::vector<Request> workload;
  workload.push_back(eval_request(0.33, 11.7));
  workload.push_back(eval_request(0.35, 12.0));
  workload.push_back(optimize_request(1400.0));
  workload.push_back(optimize_request(1522.7, Exactness::kAuto, SchemeId::kI));
  workload.push_back(eval_request(0.41, 10.06, Exactness::kExact));
  for (std::size_t i = 0; i < workload.size(); ++i) {
    workload[i].id = "q" + std::to_string(i);
  }
  const auto serialized = [&](const BatchResult& batch) {
    std::string bytes;
    for (const auto& response : batch.responses) {
      bytes += response_to_json(response);
      bytes += '\n';
    }
    return bytes;
  };

  ThreadCountGuard guard;
  par::set_default_threads(1);
  const std::string at_one = serialized(surrogate_service(dir)->run_batch(workload));
  par::set_default_threads(8);
  const std::string at_eight =
      serialized(surrogate_service(dir)->run_batch(workload));
  EXPECT_EQ(at_one, at_eight);

  // A second store loaded from the same segment serves the same bytes.
  const std::string reloaded =
      serialized(surrogate_service(dir)->run_batch(workload));
  EXPECT_EQ(at_eight, reloaded);
  EXPECT_NE(at_one.find("\"served_by\":\"surrogate\""), std::string::npos);
}

TEST(SurrogateRouting, FallbackAndRejectMatrix) {
  const auto dir = test_dir("routing");
  precompute_into(dir);
  const auto service = surrogate_service(dir);

  // Covered + auto: surrogate with bounds on the wire.
  const auto covered = service->serve(eval_request(0.33, 11.7));
  ASSERT_TRUE(covered.ok);
  EXPECT_EQ(covered.served_by, ServedBy::kSurrogate);

  // Exact pin: the exact engine answers even though a table covers it.
  const auto pinned =
      service->serve(eval_request(0.33, 11.7, Exactness::kExact));
  ASSERT_TRUE(pinned.ok);
  EXPECT_EQ(pinned.served_by, ServedBy::kExact);

  // Untabulated size: silent exact fallback under auto.
  const auto odd_size =
      service->serve(eval_request(0.33, 11.7, Exactness::kAuto, 8 * 1024));
  ASSERT_TRUE(odd_size.ok);
  EXPECT_EQ(odd_size.served_by, ServedBy::kExact);

  // Out-of-lattice knobs: exact fallback, not an interpolation.
  const auto off_grid = service->serve(eval_request(0.21, 9.5));
  EXPECT_EQ(off_grid.served_by, ServedBy::kExact);

  // Power gating is never tabulated: exact fallback under auto.
  Request gated = optimize_request(1400.0);
  gated.optimize.power_gating.enabled = true;
  gated.optimize.power_gating.perf_loss_budget = 0.1;
  const auto gated_out = service->serve(gated);
  ASSERT_TRUE(gated_out.ok) << gated_out.error.message;
  EXPECT_EQ(gated_out.served_by, ServedBy::kExact);

  // A surrogate pin that nothing covers is a typed config error...
  const auto rejected = service->serve(
      eval_request(0.33, 11.7, Exactness::kSurrogate, 8 * 1024));
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error.code, ErrorCode::kConfig);
  // ... and so is any surrogate pin when no tables were ever loaded.
  ServiceConfig no_tables;
  no_tables.surrogate_dir = test_dir("routing_missing").string();
  const auto empty_store = make_service(std::move(no_tables));
  const auto no_cover =
      empty_store->serve(eval_request(0.35, 12.0, Exactness::kSurrogate));
  ASSERT_FALSE(no_cover.ok);
  EXPECT_EQ(no_cover.error.code, ErrorCode::kConfig);
  // Auto against the empty store serves exact without complaint.
  const auto degraded = empty_store->serve(eval_request(0.35, 12.0));
  ASSERT_TRUE(degraded.ok);
  EXPECT_EQ(degraded.served_by, ServedBy::kExact);
}

TEST(SurrogateCorruption, DamagedTablesDegradeToExactNeverWrong) {
  const auto dir = test_dir("corrupt");
  precompute_into(dir);
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  std::ifstream in(segment);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 2u);

  const auto exact_bytes = [&] {
    const auto r =
        make_service()->serve(eval_request(0.35, 12.0, Exactness::kExact));
    EXPECT_TRUE(r.ok);
    return response_to_json(r);
  }();

  // Truncate mid-line, flip a checksummed byte, and append garbage: every
  // damaged line is dropped; surviving tables still serve, and anything
  // uncovered falls back to byte-identical exact answers.
  {
    std::ofstream out(segment, std::ios::trunc);
    out << lines[0] << "\n";
    out << lines[1].substr(0, lines[1].size() / 2) << "\n";
    std::string flipped = lines[2];
    flipped[flipped.size() / 2] ^= 1;
    out << flipped << "\n";
    out << "{\"this is\": \"not a table\"}\n" << "garbage\n";
  }
  const auto damaged = surrogate_service(dir);
  const auto served = damaged->serve(eval_request(0.35, 12.0));
  ASSERT_TRUE(served.ok);
  EXPECT_EQ(served.served_by, ServedBy::kExact);
  EXPECT_EQ(response_to_json(served), exact_bytes);

  // A header from some other configuration rejects the whole segment.
  {
    std::ofstream out(segment, std::ios::trunc);
    out << "{\"nanocache_surrogate\":1,\"fingerprint\":"
           "\"ffffffffffffffff\",\"stamp\":\"stale\"}\n";
    for (std::size_t i = 1; i < lines.size(); ++i) out << lines[i] << "\n";
  }
  const auto stale = surrogate_service(dir);
  const auto after_reject = stale->serve(eval_request(0.35, 12.0));
  ASSERT_TRUE(after_reject.ok);
  EXPECT_EQ(after_reject.served_by, ServedBy::kExact);
  EXPECT_EQ(response_to_json(after_reject), exact_bytes);
  // The reader never rewrites a rejected segment (read-only consumer).
  std::ifstream reread(segment);
  std::string first;
  std::getline(reread, first);
  EXPECT_NE(first.find("ffffffffffffffff"), std::string::npos);
}

TEST(SurrogateCorruption, UnusableDirectoryIsTypedIo) {
  const auto path = test_dir("not_a_dir");
  std::ofstream(path.string()) << "a file, not a directory\n";
  ServiceConfig config;
  config.surrogate_dir = path.string();
  const auto service = Service::create(std::move(config));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.error().code, ErrorCode::kIo);
}

TEST(SurrogateWire, ServedByAndBoundsRoundTripExactly) {
  const auto dir = test_dir("wire");
  precompute_into(dir);
  const auto service = surrogate_service(dir);
  for (const Request& request :
       {eval_request(0.33, 11.7), optimize_request(1522.7),
        eval_request(0.35, 12.0, Exactness::kExact)}) {
    const auto response = service->serve(request);
    ASSERT_TRUE(response.ok);
    const std::string bytes = response_to_json(response);
    const auto parsed = parse_response_json(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed->served_by, response.served_by);
    EXPECT_EQ(parsed->max_error.leakage_mw, response.max_error.leakage_mw);
    EXPECT_EQ(parsed->max_error.access_time_ps,
              response.max_error.access_time_ps);
    EXPECT_EQ(parsed->max_error.dynamic_pj, response.max_error.dynamic_pj);
    EXPECT_EQ(response_to_json(parsed.value()), bytes);
  }
}

TEST(SurrogateWire, DiskCacheReplaysSurrogateAnswersByteIdentically) {
  const auto tables = test_dir("replay_tables");
  const auto cache = test_dir("replay_cache");
  precompute_into(tables);
  const auto request = eval_request(0.33, 11.7);

  ServiceConfig cold_config;
  cold_config.surrogate_dir = tables.string();
  cold_config.cache_dir = cache.string();
  const auto cold = make_service(std::move(cold_config));
  const auto first = cold->serve(request);
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(first.served_by, ServedBy::kSurrogate);
  cold->flush_disk_cache();

  ServiceConfig warm_config;
  warm_config.surrogate_dir = tables.string();
  warm_config.cache_dir = cache.string();
  const auto warm = make_service(std::move(warm_config));
  const auto replayed = warm->serve(request);
  ASSERT_TRUE(replayed.ok);
  EXPECT_EQ(response_to_json(replayed), response_to_json(first));
  EXPECT_EQ(replayed.served_by, ServedBy::kSurrogate);
  EXPECT_EQ(replayed.max_error.leakage_mw, first.max_error.leakage_mw);
}

TEST(SurrogateWire, CanonicalKeyIgnoresAutoButPinsExactness) {
  const auto parse = [](const std::string& line) {
    const auto parsed = parse_request_json(line);
    EXPECT_TRUE(parsed.ok()) << parsed.error().message;
    return parsed.value();
  };
  const Request v3 = parse("{\"schema_version\":3,\"kind\":\"eval\"}");
  const Request spelled_auto = parse(
      "{\"schema_version\":4,\"kind\":\"eval\",\"exactness\":\"auto\"}");
  const Request pinned_exact = parse(
      "{\"schema_version\":4,\"kind\":\"eval\",\"exactness\":\"exact\"}");
  const Request pinned_surrogate = parse(
      "{\"schema_version\":4,\"kind\":\"eval\",\"exactness\":\"surrogate\"}");
  // auto-vs-absent is the same structural request (shared memo/disk/batch
  // entries); an exactness pin is a different one.
  EXPECT_EQ(request_canonical_key(v3), request_canonical_key(spelled_auto));
  EXPECT_NE(request_canonical_key(v3), request_canonical_key(pinned_exact));
  EXPECT_NE(request_canonical_key(v3),
            request_canonical_key(pinned_surrogate));
  EXPECT_NE(request_canonical_key(pinned_exact),
            request_canonical_key(pinned_surrogate));

  // An auto request never serializes the field, so pre-v4 bytes are stable.
  Request round = v3;
  EXPECT_EQ(request_to_json(round).find("exactness"), std::string::npos);
  EXPECT_NE(request_to_json(pinned_exact).find("\"exactness\":\"exact\""),
            std::string::npos);
}

TEST(SurrogateCapabilities, ReportsCoverageAndBounds) {
  const auto dir = test_dir("caps");
  const auto summary = precompute_into(dir);
  const auto service = surrogate_service(dir);
  const auto caps = service->capabilities({});
  ASSERT_TRUE(caps.ok());
  const auto& c = caps.value();
  EXPECT_TRUE(c.surrogate_loaded);
  EXPECT_EQ(c.surrogate_eval_tables,
            static_cast<int>(summary.eval_tables));
  EXPECT_EQ(c.surrogate_optimize_tables,
            static_cast<int>(summary.optimize_tables));
  EXPECT_EQ(c.surrogate_fingerprint, service->configuration_fingerprint());
  EXPECT_EQ(c.surrogate_stamp, "test-segment");
  EXPECT_EQ(c.surrogate_sizes_bytes,
            (std::vector<std::uint64_t>{16 * 1024, 1024 * 1024}));
  EXPECT_EQ(c.surrogate_nodes_nm, std::vector<int>{0});
  EXPECT_EQ(c.surrogate_schemes,
            (std::vector<std::string>{"I", "II", "III"}));
  EXPECT_GT(c.surrogate_max_error_leakage_mw, 0.0);
  EXPECT_GT(c.surrogate_max_error_access_time_ps, 0.0);

  // An exact-only service keeps the section, all-off.
  const auto exact_caps = make_service()->capabilities({});
  ASSERT_TRUE(exact_caps.ok());
  EXPECT_FALSE(exact_caps.value().surrogate_loaded);
  EXPECT_EQ(exact_caps.value().surrogate_eval_tables, 0);
}

}  // namespace
}  // namespace nanocache::api
