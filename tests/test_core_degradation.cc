// Graceful fitted->structural degradation: inside the fitted domain the
// fitted evaluator tracks the structural model; outside it (or below the
// R^2 floor) the Explorer falls back to the structural model and records
// the event — or throws under the strict policy.  The recorded events are
// visible in the report layer.
#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/report.h"
#include "util/error.h"

namespace nanocache::core {
namespace {

using cachemodel::ComponentKind;

Explorer make_fitted_explorer(DegradationPolicy policy =
                                  DegradationPolicy::kFallbackToStructural,
                              double r2_floor = 0.80) {
  ExperimentConfig cfg;
  cfg.use_fitted_models = true;
  cfg.degradation_policy = policy;
  cfg.fitted_r2_floor = r2_floor;
  return Explorer(cfg);
}

TEST(Degradation, InDomainFittedAgreesWithStructural) {
  const Explorer e = make_fitted_explorer();
  const auto& m = e.l1_model(16 * 1024);
  const auto eval = e.evaluator(m);
  int compared = 0;
  for (const tech::DeviceKnobs knobs :
       {tech::DeviceKnobs{0.25, 10.5}, tech::DeviceKnobs{0.35, 12.0},
        tech::DeviceKnobs{0.45, 13.5}}) {
    for (auto kind : cachemodel::kAllComponents) {
      const auto fitted = eval(kind, knobs);
      const auto structural = m.component(kind, knobs);
      // The closed forms are fits, not identities: allow the fit error the
      // paper accepts, but nothing resembling an extrapolation blow-up.
      EXPECT_NEAR(fitted.leakage_w, structural.leakage_w,
                  structural.leakage_w * 0.5)
          << cachemodel::component_name(kind);
      EXPECT_NEAR(fitted.delay_s, structural.delay_s,
                  structural.delay_s * 0.25)
          << cachemodel::component_name(kind);
      ++compared;
    }
  }
  EXPECT_GE(compared, 12);
  // A healthy in-domain run records nothing.
  EXPECT_TRUE(e.degradation_events().empty());
}

TEST(Degradation, OutOfDomainFallsBackToStructuralAndRecords) {
  const Explorer e = make_fitted_explorer();
  const auto& m = e.l1_model(16 * 1024);
  const auto eval = e.evaluator(m);
  const tech::DeviceKnobs outside{0.55, 12.0};  // beyond the 0.5 V grid edge
  const auto fallback = eval(ComponentKind::kCellArray, outside);
  const auto structural = m.component(ComponentKind::kCellArray, outside);
  EXPECT_DOUBLE_EQ(fallback.leakage_w, structural.leakage_w);
  EXPECT_DOUBLE_EQ(fallback.delay_s, structural.delay_s);
  ASSERT_EQ(e.degradation_events().size(), 1u);
  EXPECT_NE(e.degradation_events()[0].reason.find("outside fitted domain"),
            std::string::npos);

  // Repeats of the same cause are deduplicated, not spammed.
  eval(ComponentKind::kDecoder, outside);
  EXPECT_EQ(e.degradation_events().size(), 1u);

  // The fallback is visible in the report layer.
  const auto csv = degradation_table(e).to_csv();
  EXPECT_NE(csv.find("outside fitted domain"), std::string::npos);
}

TEST(Degradation, StrictPolicyThrowsOutOfDomain) {
  const Explorer e = make_fitted_explorer(DegradationPolicy::kStrict);
  const auto eval = e.evaluator(e.l1_model(16 * 1024));
  try {
    eval(ComponentKind::kCellArray, tech::DeviceKnobs{0.55, 12.0});
    FAIL() << "strict policy must throw out of domain";
  } catch (const Error& err) {
    EXPECT_EQ(err.category(), ErrorCategory::kNumericDomain) << err.what();
  }
  EXPECT_TRUE(e.degradation_events().empty());
}

TEST(Degradation, R2FloorForcesWholeModelFallback) {
  // No fit is perfect, so a floor of 1.0 rejects even the healthy ones and
  // the evaluator must degrade to the pure structural path.
  const Explorer e = make_fitted_explorer(
      DegradationPolicy::kFallbackToStructural, /*r2_floor=*/1.0);
  const auto& m = e.l1_model(16 * 1024);
  const auto eval = e.evaluator(m);
  const tech::DeviceKnobs knobs{0.35, 12.0};
  const auto got = eval(ComponentKind::kCellArray, knobs);
  const auto structural = m.component(ComponentKind::kCellArray, knobs);
  EXPECT_DOUBLE_EQ(got.leakage_w, structural.leakage_w);
  EXPECT_DOUBLE_EQ(got.delay_s, structural.delay_s);
  ASSERT_EQ(e.degradation_events().size(), 1u);
  EXPECT_NE(e.degradation_events()[0].reason.find("R^2"), std::string::npos);
}

TEST(Degradation, R2FloorStrictThrows) {
  const Explorer e =
      make_fitted_explorer(DegradationPolicy::kStrict, /*r2_floor=*/1.0);
  try {
    e.evaluator(e.l1_model(16 * 1024));
    FAIL() << "strict policy must reject a below-floor fit";
  } catch (const Error& err) {
    EXPECT_EQ(err.category(), ErrorCategory::kNumericDomain) << err.what();
  }
}

TEST(Degradation, ClearResetsTheLog) {
  const Explorer e = make_fitted_explorer();
  const auto eval = e.evaluator(e.l1_model(16 * 1024));
  eval(ComponentKind::kCellArray, tech::DeviceKnobs{0.55, 12.0});
  ASSERT_FALSE(e.degradation_events().empty());
  const_cast<Explorer&>(e).clear_degradation_events();
  EXPECT_TRUE(e.degradation_events().empty());
  // A cleared key logs again on the next occurrence.
  eval(ComponentKind::kCellArray, tech::DeviceKnobs{0.55, 12.0});
  EXPECT_EQ(e.degradation_events().size(), 1u);
}

TEST(Degradation, SweepRowsCarryInfeasibleReasons) {
  // An impossible AMAT target: every row must explain itself rather than
  // leaving an unexplained hole.
  Explorer e;
  const auto rows = e.l2_size_sweep(opt::Scheme::kUniform, 1e-12);
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.infeasible_reason.empty()) << r.size_bytes;
  }
}

}  // namespace
}  // namespace nanocache::core
