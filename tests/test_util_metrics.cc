// The observability layer's contracts: counter/gauge/histogram semantics,
// registry reference stability across reset(), deterministic snapshots,
// span nesting (parent/depth/phase aggregation), and thread safety under
// the fork-join pool the metrics are designed to sit beneath.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/parallel.h"
#include "util/trace_span.h"

namespace nanocache::metrics {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWatermark) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.record_max(10);
  EXPECT_EQ(g.value(), 10);
  g.record_max(2);  // lower than the watermark: no effect
  EXPECT_EQ(g.value(), 10);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket b counts v <= 2^b; the first bucket also absorbs 0.
  EXPECT_EQ(Histogram::bucket_for(0), 0u);
  EXPECT_EQ(Histogram::bucket_for(1), 0u);
  EXPECT_EQ(Histogram::bucket_for(2), 1u);
  EXPECT_EQ(Histogram::bucket_for(3), 2u);
  EXPECT_EQ(Histogram::bucket_for(4), 2u);
  EXPECT_EQ(Histogram::bucket_for(5), 3u);
  EXPECT_EQ(Histogram::bucket_for(1024), 10u);
  EXPECT_EQ(Histogram::bucket_for(1025), 11u);
  // Everything past the last finite bound lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_for(UINT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_for(1ull << 40), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveAccumulatesCountSumAndBuckets) {
  Histogram h;
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(1ull << 40);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 7u + (1ull << 40));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Registry, ResolvesSameReferenceForSameName) {
  auto& registry = Registry::instance();
  Counter& a = registry.counter("test.registry.same_name");
  Counter& b = registry.counter("test.registry.same_name");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, ResetZeroesInPlaceSoCachedReferencesSurvive) {
  auto& registry = Registry::instance();
  Counter& c = registry.counter("test.registry.reset_survivor");
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(3);  // the cached reference still feeds the registered metric
  EXPECT_EQ(registry.counter("test.registry.reset_survivor").value(), 3u);
}

TEST(Registry, SnapshotKeysAreSorted) {
  auto& registry = Registry::instance();
  registry.counter("test.snapshot.zebra").add(1);
  registry.counter("test.snapshot.alpha").add(1);
  const auto snap = registry.snapshot();
  std::vector<std::string> keys;
  for (const auto& [name, value] : snap.counters) keys.push_back(name);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(snap.counters.count("test.snapshot.alpha"), 1u);
  EXPECT_EQ(snap.counters.count("test.snapshot.zebra"), 1u);
}

TEST(Registry, CountersAreExactUnderParallelHammering) {
  auto& registry = Registry::instance();
  Counter& c = registry.counter("test.parallel.hammer");
  c.reset();
  Histogram& h = registry.histogram("test.parallel.hammer_hist");
  h.reset();
  par::parallel_for(
      10000,
      [&](std::size_t i) {
        c.add(1);
        h.observe(i % 64);
      },
      /*threads=*/8);
  EXPECT_EQ(c.value(), 10000u);
  EXPECT_EQ(h.count(), 10000u);
}

TEST(TraceSpan, NestingGivesParentAndDepth) {
  clear_spans();
  {
    TraceSpan outer("test.span.outer");
    EXPECT_EQ(TraceSpan::current(), &outer);
    EXPECT_EQ(outer.depth(), 0u);
    {
      TraceSpan inner("test.span.inner");
      EXPECT_EQ(TraceSpan::current(), &inner);
      EXPECT_EQ(inner.depth(), 1u);
    }
    EXPECT_EQ(TraceSpan::current(), &outer);
  }
  EXPECT_EQ(TraceSpan::current(), nullptr);

  const auto spans = recent_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first: the ring records spans in completion order.
  EXPECT_EQ(spans[0].name, "test.span.inner");
  EXPECT_EQ(spans[0].parent, "test.span.outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "test.span.outer");
  EXPECT_EQ(spans[1].parent, "");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
}

TEST(TraceSpan, AggregatesPhasesByName) {
  auto& registry = Registry::instance();
  registry.reset();
  { TraceSpan s("test.phase.repeat"); }
  { TraceSpan s("test.phase.repeat"); }
  { TraceSpan s("test.phase.other"); }
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.phases.count("test.phase.repeat"), 1u);
  EXPECT_EQ(snap.phases.at("test.phase.repeat").count, 2u);
  EXPECT_EQ(snap.phases.at("test.phase.other").count, 1u);
  EXPECT_GE(snap.phases.at("test.phase.repeat").total_ns,
            snap.phases.at("test.phase.repeat").max_ns);
}

TEST(TraceSpan, PoolWorkersRootTheirOwnSpans) {
  clear_spans();
  {
    TraceSpan caller("test.span.pool_caller");
    par::parallel_for(
        64, [](std::size_t) { TraceSpan s("test.span.pool_work"); },
        /*threads=*/4, /*chunk_size=*/1);
  }
  std::size_t workers = 0;
  std::set<std::uint64_t> threads;
  for (const auto& s : recent_spans()) {
    if (s.name != "test.span.pool_work") continue;
    ++workers;
    threads.insert(s.thread_id);
    // A pool worker has no enclosing span: its stack is thread-local, so
    // the span roots at depth 0 regardless of the caller's nesting.  The
    // calling thread also executes chunks; there the caller span IS the
    // parent.  Either way the span's NAME — the phase-aggregation key —
    // is identical, which is what keeps metrics stable across thread
    // counts.
    if (s.parent.empty()) {
      EXPECT_EQ(s.depth, 0u);
    } else {
      EXPECT_EQ(s.parent, "test.span.pool_caller");
      EXPECT_EQ(s.depth, 1u);
    }
  }
  EXPECT_EQ(workers, 64u);
  EXPECT_GE(threads.size(), 1u);
}

TEST(TraceSpan, RingBufferIsBounded) {
  clear_spans();
  const std::size_t capacity = span_buffer_capacity();
  for (std::size_t i = 0; i < capacity + 10; ++i) {
    TraceSpan s("test.span.flood");
  }
  EXPECT_EQ(recent_spans().size(), capacity);
}

}  // namespace
}  // namespace nanocache::metrics
