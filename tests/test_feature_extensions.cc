// Tests for the feature extensions: trace serialization, process corners,
// and the read/write dynamic-energy split.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "cachemodel/cache_model.h"
#include "energy/memory_system.h"
#include "sim/generators.h"
#include "sim/trace_io.h"
#include "tech/corners.h"
#include "util/error.h"

namespace nanocache {
namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// --- trace I/O ---------------------------------------------------------------

TEST(TraceIo, RoundTripPreservesAccesses) {
  const auto path = temp_file("nanocache_trace_rt.txt");
  sim::StrideGenerator gen(0x1000, 64, 4096, 0.3, 42);
  sim::save_trace(gen, 500, path.string());

  sim::StrideGenerator ref(0x1000, 64, 4096, 0.3, 42);
  auto loaded = sim::load_trace(path.string());
  EXPECT_EQ(loaded.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const auto a = ref.next();
    const auto b = loaded.next();
    EXPECT_EQ(a.address, b.address) << i;
    EXPECT_EQ(a.is_write, b.is_write) << i;
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const auto path = temp_file("nanocache_trace_comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n\nR ff\nW 1a\n# trailing\n";
  }
  auto t = sim::load_trace(path.string());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.next().address, 0xffu);
  const auto w = t.next();
  EXPECT_EQ(w.address, 0x1au);
  EXPECT_TRUE(w.is_write);
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsMalformedLines) {
  const auto path = temp_file("nanocache_trace_bad.txt");
  for (const char* body : {"X 12\n", "R zz\n", "R\n", "R 12junk\n"}) {
    {
      std::ofstream out(path);
      out << body;
    }
    EXPECT_THROW(sim::load_trace(path.string()), Error) << body;
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(sim::load_trace("/nonexistent/nanocache.trace"), Error);
  const auto path = temp_file("nanocache_trace_empty.txt");
  {
    std::ofstream out(path);
    out << "# nothing here\n";
  }
  EXPECT_THROW(sim::load_trace(path.string()), Error);
  std::filesystem::remove(path);
}

// --- corners -----------------------------------------------------------------

TEST(Corners, NamesDistinct) {
  EXPECT_EQ(tech::corner_name(tech::Corner::kTypical), "TT");
  EXPECT_EQ(tech::corner_name(tech::Corner::kFast), "FF");
  EXPECT_EQ(tech::corner_name(tech::Corner::kSlow), "SS");
}

TEST(Corners, TypicalIsIdentity) {
  const auto base = tech::bptm65();
  const auto tt = tech::apply_corner(base, tech::Corner::kTypical);
  EXPECT_DOUBLE_EQ(tt.isub0_a_per_um, base.isub0_a_per_um);
  EXPECT_DOUBLE_EQ(tt.idsat_ref_a_per_um, base.idsat_ref_a_per_um);
}

TEST(Corners, FastIsFasterAndLeakier) {
  const auto base = tech::bptm65();
  tech::DeviceModel tt(base);
  tech::DeviceModel ff(tech::apply_corner(base, tech::Corner::kFast));
  const tech::DeviceKnobs k{0.35, 12.0};
  EXPECT_GT(ff.on_current_a(1.0, k), tt.on_current_a(1.0, k));
  EXPECT_GT(ff.off_power_w(1.0, k), tt.off_power_w(1.0, k));
}

TEST(Corners, SlowIsSlowerAndLessLeaky) {
  const auto base = tech::bptm65();
  tech::DeviceModel tt(base);
  tech::DeviceModel ss(tech::apply_corner(base, tech::Corner::kSlow));
  const tech::DeviceKnobs k{0.35, 12.0};
  EXPECT_LT(ss.on_current_a(1.0, k), tt.on_current_a(1.0, k));
  EXPECT_LT(ss.off_power_w(1.0, k), tt.off_power_w(1.0, k));
}

TEST(Corners, SymmetricAroundTypical) {
  const auto base = tech::bptm65();
  const auto ff = tech::apply_corner(base, tech::Corner::kFast);
  const auto ss = tech::apply_corner(base, tech::Corner::kSlow);
  EXPECT_NEAR(ff.idsat_ref_a_per_um * ss.idsat_ref_a_per_um,
              base.idsat_ref_a_per_um * base.idsat_ref_a_per_um,
              base.idsat_ref_a_per_um * base.idsat_ref_a_per_um * 1e-9);
  EXPECT_NEAR(ff.isub0_a_per_um * ss.isub0_a_per_um,
              base.isub0_a_per_um * base.isub0_a_per_um,
              base.isub0_a_per_um * base.isub0_a_per_um * 1e-9);
}

// --- read/write energy split ---------------------------------------------------

std::unique_ptr<cachemodel::CacheModel> make_cache() {
  tech::DeviceModel dev(tech::bptm65());
  return std::make_unique<cachemodel::CacheModel>(
      cachemodel::l1_organization(16 * 1024, dev),
      tech::DeviceModel(dev.params()));
}

TEST(WriteEnergy, WritesCostMoreInTheArray) {
  const auto m = make_cache();
  const auto array = m->component(cachemodel::ComponentKind::kCellArray,
                                  {0.35, 12.0});
  EXPECT_GT(array.dynamic_write_energy_j, array.dynamic_energy_j);
}

TEST(WriteEnergy, PeripheryEqualForBothDirections) {
  const auto m = make_cache();
  for (auto kind : {cachemodel::ComponentKind::kDecoder,
                    cachemodel::ComponentKind::kAddressDrivers,
                    cachemodel::ComponentKind::kDataDrivers}) {
    const auto c = m->component(kind, {0.35, 12.0});
    EXPECT_DOUBLE_EQ(c.dynamic_write_energy_j, c.dynamic_energy_j);
  }
}

TEST(WriteEnergy, CacheTotalsSumComponents) {
  const auto m = make_cache();
  const auto r = m->evaluate_uniform({0.3, 11.0});
  double sum = 0.0;
  for (const auto& c : r.per_component) sum += c.dynamic_write_energy_j;
  EXPECT_NEAR(r.dynamic_write_energy_j, sum, sum * 1e-12);
  EXPECT_GT(r.dynamic_write_energy_j, r.dynamic_energy_j);
}

TEST(WriteEnergy, SystemModelBlendsByWriteFraction) {
  const auto l1 = make_cache();
  tech::DeviceModel dev(tech::bptm65());
  cachemodel::CacheModel l2(cachemodel::l2_organization(512 * 1024, dev),
                            tech::DeviceModel(dev.params()));
  const cachemodel::ComponentAssignment knobs(tech::DeviceKnobs{0.35, 12.0});

  energy::MissRates reads{0.03, 0.15, 0.0};
  energy::MissRates writes{0.03, 0.15, 1.0};
  energy::MissRates mixed{0.03, 0.15, 0.5};
  const auto er =
      energy::MemorySystemModel(*l1, l2, reads).evaluate(knobs, knobs);
  const auto ew =
      energy::MemorySystemModel(*l1, l2, writes).evaluate(knobs, knobs);
  const auto em =
      energy::MemorySystemModel(*l1, l2, mixed).evaluate(knobs, knobs);
  EXPECT_GT(ew.dynamic_energy_j, er.dynamic_energy_j);
  EXPECT_NEAR(em.dynamic_energy_j,
              0.5 * (er.dynamic_energy_j + ew.dynamic_energy_j),
              er.dynamic_energy_j * 1e-9);
}

TEST(WriteEnergy, SystemModelRejectsBadFraction) {
  const auto l1 = make_cache();
  tech::DeviceModel dev(tech::bptm65());
  cachemodel::CacheModel l2(cachemodel::l2_organization(512 * 1024, dev),
                            tech::DeviceModel(dev.params()));
  EXPECT_THROW(
      energy::MemorySystemModel(*l1, l2, energy::MissRates{0.03, 0.15, 1.5}),
      Error);
}

}  // namespace
}  // namespace nanocache
