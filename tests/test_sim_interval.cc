// Tests for the interval (windowed miss-rate) recorder and its use as a
// phase-behaviour detector together with PhaseGenerator.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cache.h"
#include "sim/generators.h"
#include "sim/interval.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

TEST(Interval, WindowsCompleteOnSchedule) {
  IntervalRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.record(i % 2 == 0);
  // 10 records -> 2 complete windows of 4; the partial window is pending.
  ASSERT_EQ(rec.miss_rates().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.miss_rates()[0], 0.5);
  EXPECT_DOUBLE_EQ(rec.miss_rates()[1], 0.5);
}

TEST(Interval, MeanAndCv) {
  IntervalRecorder rec(2);
  rec.record(true);
  rec.record(true);   // window 1: 1.0
  rec.record(false);
  rec.record(false);  // window 2: 0.0
  EXPECT_DOUBLE_EQ(rec.mean(), 0.5);
  EXPECT_GT(rec.coefficient_of_variation(), 1.0);
}

TEST(Interval, StationaryStreamHasLowCv) {
  IntervalRecorder rec(100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) rec.record(rng.uniform() < 0.2);
  EXPECT_NEAR(rec.mean(), 0.2, 0.01);
  EXPECT_LT(rec.coefficient_of_variation(), 0.35);
}

TEST(Interval, EmptyAndDegenerateAreZero) {
  IntervalRecorder rec(10);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rec.coefficient_of_variation(), 0.0);
  for (int i = 0; i < 10; ++i) rec.record(false);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rec.coefficient_of_variation(), 0.0);  // zero mean
}

TEST(Interval, RejectsZeroWindow) {
  EXPECT_THROW(IntervalRecorder(0), Error);
}

TEST(Interval, PhasedWorkloadShowsHigherCvThanBlended) {
  // The same two sources, phase-alternated vs per-access blended, through
  // the same cache: the phased version must show bursty window miss rates.
  auto run = [](bool phased) {
    auto make_sources = [] {
      std::vector<std::unique_ptr<TraceSource>> v;
      WorkingSetGenerator::Config hot;
      hot.footprint_bytes = 8 << 10;
      v.push_back(std::make_unique<WorkingSetGenerator>(hot, 1));
      v.push_back(std::make_unique<PointerChaseGenerator>(0x10000000,
                                                          1 << 20, 64, 2));
      return v;
    };
    std::unique_ptr<TraceSource> src;
    if (phased) {
      src = std::make_unique<PhaseGenerator>(make_sources(), 5000, 9);
    } else {
      src = std::make_unique<MixGenerator>(make_sources(),
                                           std::vector<double>{0.5, 0.5}, 9);
    }
    SetAssociativeCache cache(16 * 1024, 32, 2);
    IntervalRecorder rec(1000);
    for (int i = 0; i < 120000; ++i) {
      const Access a = src->next();
      rec.record(!cache.access(a.address, a.is_write).hit);
    }
    return rec.coefficient_of_variation();
  };
  EXPECT_GT(run(true), 2.0 * run(false));
}

}  // namespace
}  // namespace nanocache::sim
