// Trace serialization round-trips and tolerance for externally captured
// files (CRLF endings, lowercase access kinds), plus the corrupt-file and
// oversize rejection paths.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/trace_io.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string write_file(const std::string& name, const std::string& content) {
  const auto path = temp_path(name);
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

void expect_category(const std::string& path, ErrorCategory expected,
                     const TraceLoadOptions& options = {}) {
  try {
    load_trace(path, options);
    FAIL() << "expected load_trace to throw for " << path;
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), expected) << e.what();
  }
}

TEST(TraceIo, SaveLoadRoundTrip) {
  VectorTrace source({{0x1a2b, false}, {0x40, true}, {0xdeadbeef, false}});
  const auto path = temp_path("nanocache_trace_roundtrip.trc");
  save_trace(source, 3, path);
  auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  Access a = loaded.next();
  EXPECT_EQ(a.address, 0x1a2bu);
  EXPECT_FALSE(a.is_write);
  a = loaded.next();
  EXPECT_EQ(a.address, 0x40u);
  EXPECT_TRUE(a.is_write);
  a = loaded.next();
  EXPECT_EQ(a.address, 0xdeadbeefu);
  std::filesystem::remove(path);
}

TEST(TraceIo, AcceptsCrlfLineEndings) {
  const auto path = write_file("nanocache_trace_crlf.trc",
                               "# captured on Windows\r\nR 10\r\nW ff\r\n");
  auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.next().address, 0x10u);
  EXPECT_TRUE(loaded.next().is_write);
  std::filesystem::remove(path);
}

TEST(TraceIo, AcceptsLowercaseAccessKinds) {
  const auto path =
      write_file("nanocache_trace_lower.trc", "r 10\nw 20\nR 30\n");
  auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_FALSE(loaded.next().is_write);
  EXPECT_TRUE(loaded.next().is_write);
  EXPECT_FALSE(loaded.next().is_write);
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileIsIoError) {
  expect_category("/nonexistent_nanocache_dir/x.trc", ErrorCategory::kIo);
}

TEST(TraceIo, CommentOnlyFileIsIoError) {
  const auto path =
      write_file("nanocache_trace_empty.trc", "# header\n\n# trailer\n");
  expect_category(path, ErrorCategory::kIo);
  std::filesystem::remove(path);
}

TEST(TraceIo, GarbageKindIsIoError) {
  const auto path = write_file("nanocache_trace_kind.trc", "R 10\nZ 20\n");
  expect_category(path, ErrorCategory::kIo);
  std::filesystem::remove(path);
}

TEST(TraceIo, BadHexAddressIsIoError) {
  const auto path = write_file("nanocache_trace_hex.trc", "R 12xq\n");
  expect_category(path, ErrorCategory::kIo);
  std::filesystem::remove(path);
}

TEST(TraceIo, OverLimitIsIoError) {
  const auto path =
      write_file("nanocache_trace_limit.trc", "R 1\nR 2\nR 3\nR 4\n");
  TraceLoadOptions options;
  options.max_accesses = 3;
  expect_category(path, ErrorCategory::kIo, options);
  options.max_accesses = 4;  // exactly at the limit loads fine
  EXPECT_EQ(load_trace(path, options).size(), 4u);
  std::filesystem::remove(path);
}

TEST(TraceIo, ZeroLimitIsConfigError) {
  const auto path = write_file("nanocache_trace_zero.trc", "R 1\n");
  TraceLoadOptions options;
  options.max_accesses = 0;
  expect_category(path, ErrorCategory::kConfig, options);
  std::filesystem::remove(path);
}

TEST(TraceIo, SaveToUnwritablePathIsIoError) {
  VectorTrace source({{0x1, false}});
  try {
    save_trace(source, 1, "/nonexistent_nanocache_dir/out.trc");
    FAIL() << "expected save_trace to throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo) << e.what();
  }
}

}  // namespace
}  // namespace nanocache::sim
