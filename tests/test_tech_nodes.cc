// Tests for the 90/65/45 nm technology parameter packs and the scaling
// trends the node ablation relies on.
#include <gtest/gtest.h>

#include <memory>

#include "cachemodel/cache_model.h"
#include "tech/params.h"
#include "util/error.h"

namespace nanocache::tech {
namespace {

TEST(Nodes, AllValidate) {
  EXPECT_NO_THROW(node90().validate());
  EXPECT_NO_THROW(bptm65().validate());
  EXPECT_NO_THROW(node45().validate());
  EXPECT_NO_THROW(node32().validate());
  EXPECT_NO_THROW(node22().validate());
}

TEST(Nodes, MenuListsFiveNodesCoarseToFine) {
  EXPECT_EQ(supported_nodes(), (std::vector<int>{90, 65, 45, 32, 22}));
}

TEST(Nodes, NodeParamsMatchesTheNamedPacks) {
  EXPECT_EQ(node_params(90).vdd_v, node90().vdd_v);
  EXPECT_EQ(node_params(65).vdd_v, bptm65().vdd_v);
  EXPECT_EQ(node_params(45).vdd_v, node45().vdd_v);
  EXPECT_EQ(node_params(32).vdd_v, node32().vdd_v);
  EXPECT_EQ(node_params(22).vdd_v, node22().vdd_v);
  EXPECT_EQ(node_params(22).lgate_nominal_um, node22().lgate_nominal_um);
  EXPECT_THROW(node_params(17), Error);
  EXPECT_THROW(node_params(0), Error);
}

TEST(Nodes, ToxGridSpansEachNodesOwnWindow) {
  for (int nm : supported_nodes()) {
    const auto p = node_params(nm);
    const auto grid = node_tox_grid(p);
    ASSERT_EQ(grid.size(), 5u) << nm;
    EXPECT_DOUBLE_EQ(grid.front(), p.knobs.tox_min_a) << nm;
    EXPECT_DOUBLE_EQ(grid.back(), p.knobs.tox_max_a) << nm;
    for (std::size_t i = 1; i < grid.size(); ++i) {
      EXPECT_GT(grid[i], grid[i - 1]) << nm;
    }
  }
}

TEST(Nodes, GeometryShrinksWithScaling) {
  EXPECT_GT(node90().lgate_nominal_um, bptm65().lgate_nominal_um);
  EXPECT_GT(bptm65().lgate_nominal_um, node45().lgate_nominal_um);
  EXPECT_GT(node45().lgate_nominal_um, node32().lgate_nominal_um);
  EXPECT_GT(node32().lgate_nominal_um, node22().lgate_nominal_um);
  EXPECT_GT(node90().cell_width_um * node90().cell_height_um,
            bptm65().cell_width_um * bptm65().cell_height_um);
  EXPECT_GT(bptm65().cell_width_um * bptm65().cell_height_um,
            node45().cell_width_um * node45().cell_height_um);
}

TEST(Nodes, OxideWindowsThinWithScaling) {
  EXPECT_GT(node90().knobs.tox_min_a, bptm65().knobs.tox_min_a);
  EXPECT_GT(bptm65().knobs.tox_min_a, node45().knobs.tox_min_a);
  EXPECT_GT(node45().knobs.tox_min_a, node32().knobs.tox_min_a);
  EXPECT_GT(node32().knobs.tox_min_a, node22().knobs.tox_min_a);
  // Each node's nominal sits inside its own window.
  for (const auto& p : {node90(), bptm65(), node45(), node32(), node22()}) {
    EXPECT_GE(p.tox_nominal_a, p.knobs.tox_min_a);
    EXPECT_LE(p.tox_nominal_a, p.knobs.tox_max_a);
  }
}

TEST(Nodes, SupplyDropsWithScaling) {
  EXPECT_GT(node90().vdd_v, bptm65().vdd_v);
  EXPECT_GT(bptm65().vdd_v, node45().vdd_v);
  EXPECT_GT(node45().vdd_v, node32().vdd_v);
  EXPECT_GT(node32().vdd_v, node22().vdd_v);
}

TEST(Nodes, GateTunnellingGrowsAtThinEnd) {
  // Density at each node's own thinnest oxide grows steeply with scaling.
  auto density_at_thin = [](const TechnologyParams& p) {
    DeviceModel dev(p);
    return dev.gate_leakage_current_a(1.0,
                                      {0.35, p.knobs.tox_min_a}) /
           dev.leff_um(p.knobs.tox_min_a);  // per gate area
  };
  EXPECT_GT(density_at_thin(bptm65()), 10.0 * density_at_thin(node90()));
  EXPECT_GT(density_at_thin(node45()), 3.0 * density_at_thin(bptm65()));
}

TEST(Nodes, CacheModelsBuildAtEveryNode) {
  for (const auto& p : {node90(), bptm65(), node45(), node32(), node22()}) {
    DeviceModel dev(p);
    const auto org = cachemodel::l1_organization(16 * 1024, dev);
    cachemodel::CacheModel model(org, DeviceModel(p));
    const auto m = model.evaluate_uniform({0.35, p.tox_nominal_a});
    EXPECT_GT(m.access_time_s, 0.0);
    EXPECT_GT(m.leakage_w, 0.0);
    EXPECT_GT(m.dynamic_energy_j, 0.0);
  }
}

TEST(Nodes, GateShareGrowsAcrossNodes) {
  // The introduction's forecast, asserted at mid-window knobs.
  auto gate_share = [](const TechnologyParams& p) {
    DeviceModel dev(p);
    const auto org = cachemodel::l1_organization(16 * 1024, dev);
    cachemodel::CacheModel model(org, DeviceModel(p));
    const auto m = model.evaluate_uniform({0.35, p.tox_nominal_a});
    return m.leakage_gate_w / m.leakage_w;
  };
  const double g90 = gate_share(node90());
  const double g65 = gate_share(bptm65());
  const double g45 = gate_share(node45());
  EXPECT_LT(g90, g65);
  EXPECT_LT(g65, g45);
}

TEST(Nodes, AbsoluteLeakageGrowsAcrossNodes) {
  auto leak = [](const TechnologyParams& p) {
    DeviceModel dev(p);
    const auto org = cachemodel::l1_organization(16 * 1024, dev);
    cachemodel::CacheModel model(org, DeviceModel(p));
    return model.evaluate_uniform({0.35, p.tox_nominal_a}).leakage_w;
  };
  EXPECT_LT(leak(node90()), leak(bptm65()));
  EXPECT_LT(leak(bptm65()), leak(node45()));
}

}  // namespace
}  // namespace nanocache::tech
