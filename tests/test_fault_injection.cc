// Drives the fault-injection registry (fault_injection.h) through
// GoogleTest: every injected fault must die with a nanocache::Error of the
// promised category — never a crash, an untyped exception, or silence.
#include <gtest/gtest.h>

#include <set>

#include "fault_injection.h"

namespace nanocache::testing {
namespace {

TEST(FaultInjection, RegistryCoversTheSurface) {
  const auto cases = build_standard_faults();
  EXPECT_GE(cases.size(), 30u);
  std::set<std::string> names;
  for (const auto& c : cases) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate fault: " << c.name;
  }
}

TEST(FaultInjection, EveryFaultFailsWithItsPromisedCategory) {
  for (const auto& outcome : run_all(build_standard_faults())) {
    EXPECT_TRUE(outcome.ok)
        << "fault '" << outcome.name << "' (expecting "
        << category_name(outcome.expected) << "): " << outcome.detail;
  }
}

TEST(FaultInjection, RegistrySpansAllCategories) {
  std::set<ErrorCategory> covered;
  for (const auto& c : build_standard_faults()) covered.insert(c.expected);
  EXPECT_TRUE(covered.count(ErrorCategory::kConfig));
  EXPECT_TRUE(covered.count(ErrorCategory::kNumericDomain));
  EXPECT_TRUE(covered.count(ErrorCategory::kIo));
  EXPECT_TRUE(covered.count(ErrorCategory::kInfeasible));
  EXPECT_TRUE(covered.count(ErrorCategory::kInternal));
}

TEST(FaultInjection, MessagesCarryTheCategoryPrefix) {
  for (const auto& outcome : run_all(build_standard_faults())) {
    if (!outcome.ok) continue;  // the previous test reports these
    const std::string prefix =
        std::string("[") + category_name(outcome.expected) + "] ";
    EXPECT_EQ(outcome.detail.rfind(prefix, 0), 0u)
        << "fault '" << outcome.name << "' message: " << outcome.detail;
  }
}

}  // namespace
}  // namespace nanocache::testing
