// v3 design-space API contract: the capabilities golden (exact bytes a
// client sees), canonical-key sharing between v2 requests and their
// v3-normalized spellings, distinct keys and results for non-default
// knobs, and wire round-trips of the new organization / power_gating /
// node_nm fields.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "api/batch_io.h"
#include "nanocache/api.h"
#include "util/parallel.h"

namespace nanocache::api {
namespace {

std::shared_ptr<Service> make_service() {
  auto service = Service::create({});
  EXPECT_TRUE(service.ok()) << service.error().message;
  return service.value();
}

std::string batch_output(const Service& service, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  run_batch_jsonl(service, in, out);
  return out.str();
}

Request parse_line(const std::string& line) {
  const auto parsed = parse_request_json(line);
  EXPECT_TRUE(parsed.ok()) << parsed.error().message << " for " << line;
  return parsed.value();
}

TEST(ApiV3, CapabilitiesGoldenJson) {
  // The exact discovery bytes a v3 client sees.  Pinning the full line
  // catches accidental field reorders, renames, or formatting drift;
  // threads is pinned so the golden is machine-independent.
  const int before = par::default_threads();
  par::set_default_threads(4);
  const auto service = make_service();
  const std::string got = batch_output(
      *service, "{\"schema_version\":3,\"id\":\"cap\",\"kind\":\"capabilities\"}\n");
  par::set_default_threads(before);
  EXPECT_EQ(
      got,
      "{\"schema_version\":4,\"id\":\"cap\",\"kind\":\"capabilities\","
      "\"ok\":true,\"result\":{\"schema_versions\":[1,2,3,4],"
      "\"api_version_major\":1,\"api_version_minor\":0,"
      "\"vth_min_v\":0.2,\"vth_max_v\":0.5,\"tox_min_a\":10,\"tox_max_a\":14,"
      "\"grid_vth_v\":[0.2,0.25,0.3,0.35,0.4,0.45,0.5],"
      "\"grid_tox_a\":[10,11,12,13,14],"
      "\"schemes\":[\"I\",\"II\",\"III\"],"
      "\"sweeps\":[\"schemes\",\"l1_sizes\",\"l2_sizes\"],"
      "\"l1_size_bytes\":16384,\"l2_size_bytes\":1048576,"
      "\"threads\":4,\"search_mode\":\"pruned\","
      "\"fitted_models\":false,\"disk_cache\":false,\"cache_dir\":\"\","
      "\"organization\":{\"associativities\":[1,2,4,8],"
      "\"fully_associative\":true,\"max_banks\":8},"
      "\"power_gating\":{\"supported\":true,\"sleep_leakage_factor\":0.05,"
      "\"wake_delay_factor\":0.1,\"max_perf_loss_budget\":1},"
      "\"nodes_nm\":[90,65,45,32,22],"
      "\"surrogate\":{\"loaded\":false,\"eval_tables\":0,"
      "\"optimize_tables\":0,\"fingerprint\":\"\",\"stamp\":\"\","
      "\"sizes_bytes\":[],\"nodes_nm\":[],\"schemes\":[],"
      "\"max_error\":{\"leakage_mw\":0,\"access_time_ps\":0,"
      "\"dynamic_pj\":0}}}}\n");
}

TEST(ApiV3, NormalizedV3SharesTheCanonicalKeyOfItsV2Spelling) {
  // A v3 request that only spells out the defaults (banks:1 normalizes to
  // the default single bank) must land on the same cache entries as the
  // v2 request it normalizes to.
  const Request v2 = parse_line("{\"schema_version\":2,\"kind\":\"eval\"}");
  const Request v3 = parse_line(
      "{\"schema_version\":3,\"kind\":\"eval\","
      "\"organization\":{\"banks\":1}}");
  EXPECT_EQ(request_canonical_key(v2), request_canonical_key(v3));

  // Any non-default knob gets its own key.
  const Request assoc = parse_line(
      "{\"schema_version\":3,\"kind\":\"eval\","
      "\"organization\":{\"associativity\":4}}");
  const Request banked = parse_line(
      "{\"schema_version\":3,\"kind\":\"eval\","
      "\"organization\":{\"banks\":2}}");
  const Request node = parse_line(
      "{\"schema_version\":3,\"kind\":\"eval\",\"node_nm\":65}");
  EXPECT_NE(request_canonical_key(v2), request_canonical_key(assoc));
  EXPECT_NE(request_canonical_key(v2), request_canonical_key(banked));
  // An explicit node is a different key even when it names the default
  // technology: the node explorer searches the node's own oxide window,
  // not any user-overridden grid.
  EXPECT_NE(request_canonical_key(v2), request_canonical_key(node));
  EXPECT_NE(request_canonical_key(assoc), request_canonical_key(banked));

  const Request gated = parse_line(
      "{\"schema_version\":3,\"kind\":\"optimize\","
      "\"power_gating\":{\"enabled\":true,\"perf_loss_budget\":0.1}}");
  const Request plain =
      parse_line("{\"schema_version\":2,\"kind\":\"optimize\"}");
  EXPECT_NE(request_canonical_key(plain), request_canonical_key(gated));
}

TEST(ApiV3, V2AndNormalizedV3ShareOneCacheEntry) {
  const auto service = make_service();
  std::vector<Request> requests;
  Request v2;
  v2.id = "old";
  v2.kind = RequestKind::kEval;
  requests.push_back(v2);
  requests.push_back(parse_line(
      "{\"schema_version\":3,\"id\":\"new\",\"kind\":\"eval\","
      "\"organization\":{\"banks\":1}}"));
  const auto batch = service->run_batch(requests);
  ASSERT_EQ(batch.responses.size(), 2u);
  // Request-level dedup saw one unique request: one shared cache entry.
  EXPECT_EQ(batch.stats.unique_requests, 1u);
  EXPECT_EQ(batch.stats.request_hits, 1u);
  Response copy = batch.responses[1];
  copy.id = batch.responses[0].id;
  EXPECT_EQ(response_to_json(copy), response_to_json(batch.responses[0]));
}

TEST(ApiV3, NonDefaultKnobsReturnDistinctResults) {
  const auto service = make_service();
  const std::string base =
      batch_output(*service, "{\"schema_version\":2,\"id\":\"x\","
                             "\"kind\":\"eval\"}\n");
  for (const std::string& knob :
       {std::string("\"organization\":{\"associativity\":4}"),
        std::string("\"organization\":{\"banks\":2}"),
        std::string("\"organization\":{\"associativity\":\"full\"}"),
        std::string("\"node_nm\":45")}) {
    const std::string got = batch_output(
        *service, "{\"schema_version\":3,\"id\":\"x\",\"kind\":\"eval\"," +
                      knob + "}\n");
    EXPECT_NE(got.find("\"ok\":true"), std::string::npos) << got;
    EXPECT_NE(got, base) << knob;
  }
}

TEST(ApiV3, RequestJsonRoundTripsWithV3Fields) {
  for (const std::string& line : {
           std::string("{\"schema_version\":3,\"id\":\"a\",\"kind\":\"eval\","
                       "\"organization\":{\"associativity\":\"full\"},"
                       "\"node_nm\":32}"),
           std::string("{\"schema_version\":3,\"id\":\"b\","
                       "\"kind\":\"optimize\",\"scheme\":\"II\","
                       "\"organization\":{\"associativity\":4,\"banks\":2},"
                       "\"power_gating\":{\"enabled\":true,"
                       "\"perf_loss_budget\":0.1},\"node_nm\":22}"),
           std::string("{\"schema_version\":3,\"id\":\"c\",\"kind\":\"sweep\","
                       "\"sweep\":\"schemes\",\"node_nm\":90}"),
       }) {
    const Request request = parse_line(line);
    const std::string encoded = request_to_json(request);
    const Request reparsed = parse_line(encoded);
    EXPECT_EQ(request_to_json(reparsed), encoded) << line;
    EXPECT_EQ(request_canonical_key(reparsed), request_canonical_key(request))
        << line;
  }
}

TEST(ApiV3, GatedAssignmentsSurviveTheResponseRoundTrip) {
  // At a generous delay target every domain prefers its gated variant
  // (95% leakage saved for 10% delay), so the response must carry
  // "gated":true markers and reparse to the same bytes — the disk cache
  // depends on serialize(parse(x)) == x.
  const auto service = make_service();
  const std::string line =
      "{\"schema_version\":3,\"id\":\"g\",\"kind\":\"optimize\","
      "\"scheme\":\"III\",\"delay\":{\"target_ps\":5000},"
      "\"power_gating\":{\"enabled\":true,\"perf_loss_budget\":0.2}}\n";
  const std::string got = batch_output(*service, line);
  ASSERT_NE(got.find("\"ok\":true"), std::string::npos) << got;
  EXPECT_NE(got.find("\"gated\":true"), std::string::npos) << got;

  const std::string body = got.substr(0, got.size() - 1);  // strip newline
  const auto parsed = parse_response_json(body);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(response_to_json(parsed.value()), body);
}

TEST(ApiV3, InvalidKnobsAreTypedConfigErrors) {
  const auto service = make_service();
  for (const std::string& line : {
           std::string("{\"schema_version\":3,\"id\":\"x\",\"kind\":\"eval\","
                       "\"organization\":{\"associativity\":3}}"),
           std::string("{\"schema_version\":3,\"id\":\"x\",\"kind\":\"eval\","
                       "\"organization\":{\"banks\":3}}"),
           std::string("{\"schema_version\":3,\"id\":\"x\",\"kind\":\"eval\","
                       "\"organization\":{\"banks\":16}}"),
           std::string("{\"schema_version\":3,\"id\":\"x\",\"kind\":\"eval\","
                       "\"node_nm\":17}"),
           std::string("{\"schema_version\":3,\"id\":\"x\","
                       "\"kind\":\"optimize\",\"power_gating\":{"
                       "\"enabled\":true,\"perf_loss_budget\":1.5}}"),
       }) {
    const std::string got = batch_output(*service, line + "\n");
    EXPECT_NE(got.find("\"ok\":false"), std::string::npos) << got;
    EXPECT_NE(got.find("\"code\":\"config\""), std::string::npos) << got;
  }
}

}  // namespace
}  // namespace nanocache::api
