// Tests for the Section 4 scheme optimizers: exactness against brute
// force on reduced grids, constraint satisfaction, the paper's scheme
// ordering, and the array-conservative/periphery-aggressive structure of
// the optima.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "opt/schemes.h"
#include "util/error.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

const CacheModel& cache16k() {
  static auto model = [] {
    tech::DeviceModel dev(tech::bptm65());
    return std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
  }();
  return *model;
}

KnobGrid small_grid() {
  KnobGrid g;
  g.vth_values = {0.20, 0.35, 0.50};
  g.tox_values = {10.0, 14.0};
  return g;
}

/// Brute-force scheme-I optimum by full enumeration (6^4 = 1296 states).
std::optional<SchemeResult> brute_force_scheme1(const ComponentEvaluator& eval,
                                                const KnobGrid& grid,
                                                double constraint) {
  const auto pairs = grid.pairs();
  std::array<std::vector<ComponentOption>, kNumComponents> options;
  for (ComponentKind kind : kAllComponents) {
    options[static_cast<std::size_t>(kind)] =
        component_options(eval, kind, pairs);
  }
  std::optional<SchemeResult> best;
  const std::size_t n = pairs.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t d = 0; d < n; ++d) {
          const double delay = options[0][a].delay_s + options[1][b].delay_s +
                               options[2][c].delay_s + options[3][d].delay_s;
          if (delay > constraint) continue;
          const double leak =
              options[0][a].leakage_w + options[1][b].leakage_w +
              options[2][c].leakage_w + options[3][d].leakage_w;
          if (!best || leak < best->leakage_w) {
            SchemeResult r;
            r.leakage_w = leak;
            r.access_time_s = delay;
            r.assignment.set(ComponentKind::kCellArray, options[0][a].knobs);
            r.assignment.set(ComponentKind::kDecoder, options[1][b].knobs);
            r.assignment.set(ComponentKind::kAddressDrivers,
                             options[2][c].knobs);
            r.assignment.set(ComponentKind::kDataDrivers, options[3][d].knobs);
            best = r;
          }
        }
      }
    }
  }
  return best;
}

TEST(SchemeNames, AllDistinct) {
  EXPECT_NE(scheme_name(Scheme::kPerComponent),
            scheme_name(Scheme::kArrayPeriphery));
  EXPECT_NE(scheme_name(Scheme::kArrayPeriphery),
            scheme_name(Scheme::kUniform));
}

TEST(SchemeOptimizer, Scheme1MatchesBruteForce) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = small_grid();
  const double lo = min_access_time(eval, grid, Scheme::kPerComponent);
  for (double factor : {1.05, 1.2, 1.5, 2.0}) {
    const double constraint = lo * factor;
    const auto fast = optimize_single_cache(eval, grid,
                                            Scheme::kPerComponent, constraint);
    const auto truth = brute_force_scheme1(eval, grid, constraint);
    ASSERT_EQ(fast.has_value(), truth.has_value()) << factor;
    if (fast) {
      EXPECT_NEAR(fast->leakage_w, truth->leakage_w,
                  truth->leakage_w * 1e-9)
          << factor;
    }
  }
}

TEST(SchemeOptimizer, RespectsDelayConstraint) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  for (Scheme s : {Scheme::kPerComponent, Scheme::kArrayPeriphery,
                   Scheme::kUniform}) {
    const double lo = min_access_time(eval, grid, s);
    const auto r = optimize_single_cache(eval, grid, s, lo * 1.3);
    ASSERT_TRUE(r.has_value());
    EXPECT_LE(r->access_time_s, lo * 1.3 * (1 + 1e-12));
  }
}

TEST(SchemeOptimizer, InfeasibleReturnsNullopt) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  EXPECT_FALSE(optimize_single_cache(eval, grid, Scheme::kUniform, lo * 0.5)
                   .has_value());
  EXPECT_THROW(
      optimize_single_cache(eval, grid, Scheme::kUniform, -1.0), Error);
}

TEST(SchemeOptimizer, OrderingMatchesPaper) {
  // Scheme I <= Scheme II <= Scheme III at every feasible target (a strict
  // nesting of the feasible assignment sets).
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  for (double factor : {1.05, 1.15, 1.3, 1.6, 2.0}) {
    const double t = lo * factor;
    const auto s1 = optimize_single_cache(eval, grid, Scheme::kPerComponent, t);
    const auto s2 =
        optimize_single_cache(eval, grid, Scheme::kArrayPeriphery, t);
    const auto s3 = optimize_single_cache(eval, grid, Scheme::kUniform, t);
    ASSERT_TRUE(s1 && s2 && s3) << factor;
    EXPECT_LE(s1->leakage_w, s2->leakage_w * (1 + 1e-12)) << factor;
    EXPECT_LE(s2->leakage_w, s3->leakage_w * (1 + 1e-12)) << factor;
  }
}

TEST(SchemeOptimizer, SchemeIIWithinFewPercentOfSchemeI) {
  // The paper's economic argument: II is "only slightly behind" I.
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  const auto s1 =
      optimize_single_cache(eval, grid, Scheme::kPerComponent, lo * 1.4);
  const auto s2 =
      optimize_single_cache(eval, grid, Scheme::kArrayPeriphery, lo * 1.4);
  ASSERT_TRUE(s1 && s2);
  EXPECT_LT(s2->leakage_w / s1->leakage_w, 1.25);
}

TEST(SchemeOptimizer, ArrayGetsConservativeKnobs) {
  // "High values of Vth and thick Tox are always assigned to the memory
  // cell arrays" in schemes I and II (checked at mid targets where the
  // choice is non-trivial).
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  for (Scheme s : {Scheme::kPerComponent, Scheme::kArrayPeriphery}) {
    const auto r = optimize_single_cache(eval, grid, s, lo * 1.4);
    ASSERT_TRUE(r.has_value());
    const auto& arr = r->assignment.get(ComponentKind::kCellArray);
    const auto& per = r->assignment.get(ComponentKind::kDecoder);
    EXPECT_GE(arr.vth_v, per.vth_v);
    EXPECT_GE(arr.tox_a, per.tox_a);
  }
}

TEST(SchemeOptimizer, UniformAssignmentIsActuallyUniform) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  const auto r = optimize_single_cache(eval, grid, Scheme::kUniform, lo * 1.5);
  ASSERT_TRUE(r.has_value());
  const auto& first = r->assignment.get(ComponentKind::kCellArray);
  for (ComponentKind kind : kAllComponents) {
    EXPECT_EQ(r->assignment.get(kind), first);
  }
}

TEST(SchemeOptimizer, SchemeIIPairsShared) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kArrayPeriphery);
  const auto r =
      optimize_single_cache(eval, grid, Scheme::kArrayPeriphery, lo * 1.4);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->assignment.get(ComponentKind::kDecoder),
            r->assignment.get(ComponentKind::kAddressDrivers));
  EXPECT_EQ(r->assignment.get(ComponentKind::kDecoder),
            r->assignment.get(ComponentKind::kDataDrivers));
}

TEST(SchemeOptimizer, LeakageMonotoneInConstraint) {
  // Looser constraints can only help.
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kPerComponent);
  double prev = std::numeric_limits<double>::infinity();
  for (double factor = 1.05; factor < 2.6; factor += 0.25) {
    const auto r = optimize_single_cache(eval, grid, Scheme::kPerComponent,
                                         lo * factor);
    ASSERT_TRUE(r.has_value()) << factor;
    EXPECT_LE(r->leakage_w, prev * (1 + 1e-12)) << factor;
    prev = r->leakage_w;
  }
}

TEST(SchemeOptimizer, MinAccessTimeOrdering) {
  // More freedom can only speed things up (or tie).
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double t1 = min_access_time(eval, grid, Scheme::kPerComponent);
  const double t2 = min_access_time(eval, grid, Scheme::kArrayPeriphery);
  const double t3 = min_access_time(eval, grid, Scheme::kUniform);
  EXPECT_LE(t1, t2 * (1 + 1e-12));
  EXPECT_LE(t2, t3 * (1 + 1e-12));
}

TEST(LeakageDelayCurve, SkipsInfeasibleTargets) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  const auto curve = leakage_delay_curve(
      eval, grid, Scheme::kUniform, {lo * 0.5, lo * 1.2, lo * 1.6});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_GE(curve[0].result.leakage_w, curve[1].result.leakage_w);
}

TEST(Options, PeripheryIsSumOfThreeComponents) {
  const auto eval = structural_evaluator(cache16k());
  const auto pairs = small_grid().pairs();
  const auto periph = periphery_options(eval, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    double delay = 0.0;
    double leak = 0.0;
    for (ComponentKind kind :
         {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
          ComponentKind::kDataDrivers}) {
      const auto m = eval(kind, pairs[i]);
      delay += m.delay_s;
      leak += m.leakage_w;
    }
    EXPECT_NEAR(periph[i].delay_s, delay, delay * 1e-12);
    EXPECT_NEAR(periph[i].leakage_w, leak, leak * 1e-12);
  }
}

TEST(Options, UniformIsSumOfAllFour) {
  const auto eval = structural_evaluator(cache16k());
  const auto pairs = small_grid().pairs();
  const auto uni = uniform_options(eval, pairs);
  const auto m = cache16k().evaluate_uniform(pairs[0]);
  EXPECT_NEAR(uni[0].delay_s, m.access_time_s, m.access_time_s * 1e-12);
  EXPECT_NEAR(uni[0].leakage_w, m.leakage_w, m.leakage_w * 1e-12);
}

TEST(Options, FittedEvaluatorTracksStructural) {
  const auto& model = cache16k();
  const auto fits = cachemodel::FittedCacheModel::fit(model);
  const auto fitted = fitted_evaluator(fits, model);
  const auto structural = structural_evaluator(model);
  const tech::DeviceKnobs k{0.35, 12.0};
  for (ComponentKind kind : kAllComponents) {
    const auto f = fitted(kind, k);
    const auto s = structural(kind, k);
    EXPECT_NEAR(f.delay_s / s.delay_s, 1.0, 0.1)
        << component_name(kind);
    // Dynamic energy passes through from the structural model.
    EXPECT_DOUBLE_EQ(f.dynamic_energy_j, s.dynamic_energy_j);
  }
}

TEST(Options, FittedOptimizerAgreesWithStructuralOnOrdering) {
  // The paper optimized its fitted forms; our reproduction must reach the
  // same scheme ordering through that path too.
  const auto& model = cache16k();
  const auto fits = cachemodel::FittedCacheModel::fit(model);
  const auto eval = fitted_evaluator(fits, model);
  const auto grid = KnobGrid::paper_default();
  const double lo = min_access_time(eval, grid, Scheme::kUniform);
  const auto s1 =
      optimize_single_cache(eval, grid, Scheme::kPerComponent, lo * 1.3);
  const auto s3 = optimize_single_cache(eval, grid, Scheme::kUniform, lo * 1.3);
  ASSERT_TRUE(s1 && s3);
  EXPECT_LE(s1->leakage_w, s3->leakage_w * (1 + 1e-12));
}

}  // namespace
}  // namespace nanocache::opt
