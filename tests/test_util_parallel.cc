// The parallel engine's contracts: index coverage, deterministic
// reductions, typed-error propagation, degenerate ranges, and nested-call
// rejection.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/metrics.h"

namespace nanocache {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(1000);
    par::parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  bool called = false;
  par::parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ChunkLargerThanRangeRunsSerially) {
  std::vector<int> hits(5, 0);  // plain ints: serial path, no races
  par::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i] += 1; },
      /*threads=*/8, /*chunk_size=*/100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SingleThreadRunsInCallingThread) {
  const auto caller = std::this_thread::get_id();
  par::parallel_for(
      100, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*threads=*/1);
}

TEST(ParallelFor, PropagatesTypedErrorWithCategory) {
  const auto run = [] {
    par::parallel_for(
        500,
        [](std::size_t i) {
          if (i == 137) {
            throw Error(ErrorCategory::kNumericDomain, "poisoned index");
          }
        },
        /*threads=*/4);
  };
  try {
    run();
    FAIL() << "expected Error to cross the pool";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kNumericDomain);
    EXPECT_NE(std::string(e.what()).find("poisoned index"), std::string::npos);
  }
}

TEST(ParallelFor, LowestFailingIndexWinsWhenChunksRace) {
  // Two failing indices; the reported error must be the lower one whenever
  // both chunks ran.  With chunk_size=1 and the failure at index 0, chunk 0
  // always runs (some thread claims it first), so index 0 must win.
  try {
    par::parallel_for(
        64,
        [](std::size_t i) {
          if (i == 0) throw Error(ErrorCategory::kConfig, "first");
          if (i == 63) throw Error(ErrorCategory::kInternal, "last");
        },
        /*threads=*/4, /*chunk_size=*/1);
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kConfig);
  }
}

TEST(ParallelFor, NestedCallsCollapseToSerialInline) {
  std::atomic<int> nested_parallel{0};
  std::atomic<int> total{0};
  par::parallel_for(
      8,
      [&](std::size_t) {
        EXPECT_TRUE(par::in_parallel_region());
        const auto worker = std::this_thread::get_id();
        par::parallel_for(
            16,
            [&](std::size_t) {
              total.fetch_add(1);
              // Inner work must stay on the worker that issued it.
              if (std::this_thread::get_id() != worker) {
                nested_parallel.fetch_add(1);
              }
            },
            /*threads=*/8);
      },
      /*threads=*/4);
  EXPECT_EQ(nested_parallel.load(), 0);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(SerialRegionGuard, ForcesInlineExecution) {
  EXPECT_FALSE(par::in_parallel_region());
  {
    par::SerialRegionGuard serial;
    EXPECT_TRUE(par::in_parallel_region());
    const auto caller = std::this_thread::get_id();
    par::parallel_for(100, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  EXPECT_FALSE(par::in_parallel_region());
}

TEST(ParallelMap, ResultsInIndexOrder) {
  for (int threads : {1, 3, 8}) {
    const auto out = par::parallel_map(
        257, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelReduce, FloatingPointSumIsBitIdenticalAcrossThreadCounts) {
  // A sum whose value depends on association order: harmonic-ish terms of
  // wildly varying magnitude.  Identical bits at every thread count is the
  // determinism contract, not just approximate equality.
  const std::size_t n = 10'000;
  const auto sum_at = [&](int threads) {
    return par::parallel_reduce(
        n, 0.0,
        [](double& acc, std::size_t i) {
          acc += std::exp2(static_cast<double>(i % 64)) /
                 (static_cast<double>(i) + 1.0);
        },
        [](double& into, double from) { into += from; }, threads);
  };
  const double base = sum_at(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(base, sum_at(threads)) << "threads=" << threads;
  }
}

TEST(ParallelReduce, FirstWinsArgminMatchesSerialScan) {
  // Many duplicate minima; first-wins is order-sensitive, so this passes
  // only if partials merge in chunk index order.
  const std::size_t n = 5'000;
  const auto value = [](std::size_t i) {
    return static_cast<double>((i * 7919) % 100);
  };
  struct Best {
    double v = 1e300;
    std::size_t idx = 0;
  };
  const auto argmin_at = [&](int threads) {
    return par::parallel_reduce(
        n, Best{},
        [&](Best& acc, std::size_t i) {
          if (value(i) < acc.v) acc = Best{value(i), i};
        },
        [](Best& into, Best from) {
          if (from.v < into.v) into = from;  // strict: earlier chunk wins ties
        },
        threads);
  };
  Best serial;
  for (std::size_t i = 0; i < n; ++i) {
    if (value(i) < serial.v) serial = Best{value(i), i};
  }
  for (int threads : {1, 2, 4, 8}) {
    const auto b = argmin_at(threads);
    EXPECT_EQ(b.idx, serial.idx) << "threads=" << threads;
    EXPECT_EQ(b.v, serial.v) << "threads=" << threads;
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const int r = par::parallel_reduce(
      0, 42, [](int&, std::size_t) { FAIL(); }, [](int&, int) { FAIL(); });
  EXPECT_EQ(r, 42);
}

TEST(Defaults, SetDefaultThreadsRoundTrips) {
  par::set_default_threads(3);
  EXPECT_EQ(par::default_threads(), 3);
  par::set_default_threads(0);  // restore
  EXPECT_GE(par::default_threads(), 1);
  EXPECT_THROW(par::set_default_threads(-1), Error);
}

TEST(Defaults, HardwareThreadsIsPositive) {
  EXPECT_GE(par::hardware_threads(), 1);
}

TEST(ParallelFor, PropagatedErrorIsThreadCountInvariant) {
  // Several failing indices scattered through the range: whatever the
  // thread count or chunking, the error that surfaces must be the one the
  // serial loop would hit first — the batch byte-identity contract depends
  // on it.
  const auto body = [](std::size_t i) {
    if (i == 5 || i == 100 || i == 900) {
      throw Error(ErrorCategory::kNumericDomain,
                  "boom at " + std::to_string(i));
    }
  };
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}}) {
      try {
        par::parallel_for(1000, body, threads, chunk);
        FAIL() << "expected an error";
      } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "[numeric-domain] boom at 5")
            << "threads=" << threads << " chunk=" << chunk;
      }
    }
  }
}

// --- Cost-hinted serial fallback (tiny regions skip the pool) -------------

std::uint64_t serial_regions() {
  return metrics::Registry::instance()
      .counter("parallel.serial_regions")
      .value();
}

TEST(CostHint, TinyRegionsRunSerially) {
  const auto before = serial_regions();
  std::vector<int> hits(64, 0);  // plain ints: only race-free if serial
  par::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i] += 1; },
      /*threads=*/4, /*chunk_size=*/0, /*cost_hint_ns=*/100);
  // 64 x 100 ns estimated is far under the 3 ms pool round-trip threshold.
  EXPECT_EQ(serial_regions(), before + 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(CostHint, ExpensiveRegionsStayParallel) {
  const auto before = serial_regions();
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
      /*threads=*/4, /*chunk_size=*/0, /*cost_hint_ns=*/1'000'000);
  EXPECT_EQ(serial_regions(), before);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CostHint, ZeroHintMeansUnknownAndStaysParallel) {
  const auto before = serial_regions();
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
      /*threads=*/4);
  EXPECT_EQ(serial_regions(), before);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CostHint, FallbackDoesNotChangeResults) {
  // A non-associative floating-point fold: any reordering would show up in
  // the low bits.  The serial fallback walks the same chunk boundaries in
  // the same order, so the result must be bit-identical at every hint.
  const auto run = [](std::uint64_t hint) {
    return par::parallel_reduce(
        10'000, 0.0,
        [](double& acc, std::size_t i) {
          acc += std::sin(static_cast<double>(i)) * 1e-3;
        },
        [](double& into, double from) { into += from; },
        /*threads=*/4, hint);
  };
  const double baseline = run(0);               // unknown cost: pool
  const double serial = run(1);                 // tiny: serial fallback
  const double parallel = run(100'000'000);     // huge: pool
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial),
            std::bit_cast<std::uint64_t>(baseline));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel),
            std::bit_cast<std::uint64_t>(baseline));
}

/// setenv/unsetenv wrapper restoring NANOCACHE_THREADS afterwards.
class EnvThreadsGuard {
 public:
  EnvThreadsGuard() {
    const char* prev = std::getenv("NANOCACHE_THREADS");
    if (prev != nullptr) saved_ = prev;
  }
  ~EnvThreadsGuard() {
    if (saved_.has_value()) {
      ::setenv("NANOCACHE_THREADS", saved_->c_str(), 1);
    } else {
      ::unsetenv("NANOCACHE_THREADS");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(Defaults, EnvThreadsStrictParsing) {
  EnvThreadsGuard guard;
  par::set_default_threads(0);  // make the env variable the source

  // An empty variable counts as unset (shell convention), so it is absent
  // from this list.
  for (const char* bad : {"abc", "0", "-4", "2000", "8 ", "8x"}) {
    ::setenv("NANOCACHE_THREADS", bad, 1);
    try {
      par::default_threads();
      FAIL() << "expected Error(kConfig) for NANOCACHE_THREADS='" << bad
             << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kConfig) << bad;
    }
  }

  ::setenv("NANOCACHE_THREADS", "8", 1);
  EXPECT_EQ(par::default_threads(), 8);
  // The upper bound of the accepted range is valid but capped to the
  // pool's worker limit, never an error.
  ::setenv("NANOCACHE_THREADS", "1024", 1);
  EXPECT_GE(par::default_threads(), 1);
  EXPECT_LE(par::default_threads(), 1024);

  ::unsetenv("NANOCACHE_THREADS");
  EXPECT_GE(par::default_threads(), 1);
}

}  // namespace
}  // namespace nanocache
