// Tests for the simulator extensions: write-through/no-write-allocate
// hierarchy policy, the no-allocate cache path, and the program-phase
// generator.
#include <gtest/gtest.h>

#include <memory>

#include "sim/generators.h"
#include "sim/hierarchy.h"
#include "util/rng.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

// --- no-allocate cache path --------------------------------------------------

TEST(NoAllocate, MissDoesNotFill) {
  SetAssociativeCache c(1024, 32, 2);
  const auto r = c.access(0x100, false, /*allocate_on_miss=*/false);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(NoAllocate, HitStillUpdatesRecency) {
  SetAssociativeCache c(1024, 32, 2, Replacement::kLru);
  const std::uint64_t A = 0, B = 512, C = 1024;  // one set
  c.access(A, false);
  c.access(B, false);
  // Touch A through the no-allocate path: must refresh its recency.
  EXPECT_TRUE(c.access(A, false, /*allocate_on_miss=*/false).hit);
  c.access(C, false);  // evicts B, not A
  EXPECT_TRUE(c.contains(A));
  EXPECT_FALSE(c.contains(B));
}

// --- write-through hierarchy --------------------------------------------------

TEST(WriteThrough, EveryWriteReachesL2) {
  TwoLevelHierarchy wt(SetAssociativeCache(1024, 32, 2),
                       SetAssociativeCache(16 * 1024, 64, 8),
                       WritePolicy::kWriteThroughNoAllocate);
  for (int i = 0; i < 10; ++i) wt.access(0x40, true);  // same line
  EXPECT_EQ(wt.stats().l2_accesses, 10u);
}

TEST(WriteThrough, WriteMissDoesNotFillL1) {
  TwoLevelHierarchy wt(SetAssociativeCache(1024, 32, 2),
                       SetAssociativeCache(16 * 1024, 64, 8),
                       WritePolicy::kWriteThroughNoAllocate);
  wt.access(0x80, true);
  EXPECT_FALSE(wt.l1().contains(0x80));
  EXPECT_TRUE(wt.l2().contains(0x80));
}

TEST(WriteThrough, ReadsStillAllocate) {
  TwoLevelHierarchy wt(SetAssociativeCache(1024, 32, 2),
                       SetAssociativeCache(16 * 1024, 64, 8),
                       WritePolicy::kWriteThroughNoAllocate);
  wt.access(0x80, false);
  EXPECT_TRUE(wt.l1().contains(0x80));
}

TEST(WriteThrough, NoL1Writebacks) {
  TwoLevelHierarchy wt(SetAssociativeCache(1024, 32, 1),
                       SetAssociativeCache(16 * 1024, 64, 8),
                       WritePolicy::kWriteThroughNoAllocate);
  // Read-allocate a line, write it (stays clean), then conflict it out.
  wt.access(0, false);
  wt.access(0, true);
  wt.access(1024, false);
  EXPECT_EQ(wt.stats().l1_writebacks, 0u);
}

TEST(WriteThrough, MoreL2TrafficThanWriteBackWhenResident) {
  // The classic write-through cost shows on a working set resident in L1:
  // write-back coalesces repeated writes in the L1 line; write-through
  // sends every one of them to L2.
  auto run = [](WritePolicy policy) {
    TwoLevelHierarchy h(SetAssociativeCache(4096, 32, 2),
                        SetAssociativeCache(64 * 1024, 64, 8), policy);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t addr = rng.below(2048);  // fits in L1
      h.access(addr & ~7ull, rng.uniform() < 0.4);
    }
    return h.stats().l2_accesses;
  };
  EXPECT_GT(run(WritePolicy::kWriteThroughNoAllocate),
            5 * run(WritePolicy::kWriteBackAllocate));
}

TEST(WriteThrough, PolicyAccessorWorks) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 2),
                      SetAssociativeCache(16 * 1024, 64, 8));
  EXPECT_EQ(h.write_policy(), WritePolicy::kWriteBackAllocate);
}

// --- phase generator ----------------------------------------------------------

std::vector<std::unique_ptr<TraceSource>> two_regions() {
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(std::make_unique<StrideGenerator>(0x0, 8, 4096, 0.0, 1));
  v.push_back(
      std::make_unique<StrideGenerator>(0x10000000, 8, 4096, 0.0, 2));
  return v;
}

TEST(PhaseGenerator, StaysInPhaseForRuns) {
  PhaseGenerator g(two_regions(), /*mean_phase_length=*/1000, 42);
  // Over a window much shorter than the mean phase, almost all accesses
  // come from one region.
  int switches = 0;
  bool last_high = g.next().address >= 0x10000000;
  for (int i = 0; i < 200; ++i) {
    const bool high = g.next().address >= 0x10000000;
    if (high != last_high) ++switches;
    last_high = high;
  }
  EXPECT_LE(switches, 2);
}

TEST(PhaseGenerator, EventuallyVisitsAllPhases) {
  PhaseGenerator g(two_regions(), /*mean_phase_length=*/50, 42);
  bool low = false;
  bool high = false;
  for (int i = 0; i < 5000; ++i) {
    if (g.next().address >= 0x10000000) {
      high = true;
    } else {
      low = true;
    }
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
  EXPECT_GT(g.phase_transitions(), 10u);
}

TEST(PhaseGenerator, MeanPhaseLengthApproximatelyRespected) {
  PhaseGenerator g(two_regions(), /*mean_phase_length=*/100, 7);
  const int n = 100000;
  for (int i = 0; i < n; ++i) g.next();
  const double mean_run =
      static_cast<double>(n) / static_cast<double>(g.phase_transitions());
  EXPECT_NEAR(mean_run, 100.0, 25.0);
}

TEST(PhaseGenerator, SinglePhaseNeverSwitches) {
  std::vector<std::unique_ptr<TraceSource>> one;
  one.push_back(std::make_unique<StrideGenerator>(0, 8, 4096, 0.0, 1));
  PhaseGenerator g(std::move(one), 10, 3);
  for (int i = 0; i < 1000; ++i) g.next();
  EXPECT_EQ(g.phase_transitions(), 0u);
  EXPECT_EQ(g.current_phase(), 0u);
}

TEST(PhaseGenerator, Validates) {
  EXPECT_THROW(PhaseGenerator({}, 10, 1), Error);
  EXPECT_THROW(PhaseGenerator(two_regions(), 0, 1), Error);
}

TEST(PhaseGenerator, Deterministic) {
  PhaseGenerator a(two_regions(), 30, 9);
  PhaseGenerator b(two_regions(), 30, 9);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.next().address, b.next().address);
  }
}

}  // namespace
}  // namespace nanocache::sim
