// Tests for the paper's closed-form models (Section 3): fitting Eq. (1)
// and Eq. (2) to device/cache characterization data and checking the signs
// and quality the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "tech/characterize.h"
#include "tech/device.h"
#include "tech/fitted.h"
#include "util/error.h"

namespace nanocache::tech {
namespace {

std::vector<KnobSample> leakage_samples(const DeviceModel& dev) {
  const auto grid = knob_grid(dev.params().knobs, 13, 9);
  return characterize(grid, [&](const DeviceKnobs& k) {
    // A 6T-cell-shaped leakage figure: what the paper fitted from HSPICE.
    return dev.cell_leakage_w(k);
  });
}

std::vector<KnobSample> delay_samples(const DeviceModel& dev) {
  const auto grid = knob_grid(dev.params().knobs, 13, 9);
  return characterize(grid, [&](const DeviceKnobs& k) {
    // A stage-delay-shaped figure: R_eff(Vth, Tox) * C with C ~ constant.
    return dev.effective_resistance_ohm(1.0, k) * 10e-15;
  });
}

TEST(FittedLeakageModel, HighQualityFit) {
  const DeviceModel dev(bptm65());
  const auto m = FittedLeakageModel::fit(leakage_samples(dev));
  EXPECT_GT(m.r2(), 0.97);
}

TEST(FittedLeakageModel, ExponentSignsMatchPaper) {
  // Eq. (1): both exponents negative (leakage falls as either knob rises).
  const DeviceModel dev(bptm65());
  const auto m = FittedLeakageModel::fit(leakage_samples(dev));
  EXPECT_LT(m.rate_vth(), 0.0);
  EXPECT_LT(m.rate_tox(), 0.0);
  EXPECT_GT(m.a1(), 0.0);
  EXPECT_GT(m.a2(), 0.0);
}

TEST(FittedLeakageModel, TracksSourceWithinTolerance) {
  const DeviceModel dev(bptm65());
  const auto m = FittedLeakageModel::fit(leakage_samples(dev));
  // Spot-check interior points (not on the fitting grid).
  for (const auto& k :
       {DeviceKnobs{0.27, 10.7}, DeviceKnobs{0.41, 12.3},
        DeviceKnobs{0.33, 13.6}}) {
    const double truth = dev.cell_leakage_w(k);
    const double fitted = m(k);
    EXPECT_NEAR(fitted / truth, 1.0, 0.5)
        << "vth=" << k.vth_v << " tox=" << k.tox_a;
  }
}

TEST(FittedLeakageModel, MonotoneOverKnobWindow) {
  const DeviceModel dev(bptm65());
  const auto m = FittedLeakageModel::fit(leakage_samples(dev));
  for (double tox : {10.0, 12.0, 14.0}) {
    EXPECT_GT(m({0.2, tox}), m({0.5, tox}));
  }
  for (double vth : {0.2, 0.35, 0.5}) {
    EXPECT_GT(m({vth, 10.0}), m({vth, 14.0}));
  }
}

TEST(FittedLeakageModel, RejectsTinySampleSets) {
  EXPECT_THROW(FittedLeakageModel::fit({}), Error);
  std::vector<KnobSample> few(4, KnobSample{{0.3, 12.0}, 1.0});
  EXPECT_THROW(FittedLeakageModel::fit(few), Error);
}

TEST(FittedDelayModel, HighQualityFit) {
  const DeviceModel dev(bptm65());
  const auto m = FittedDelayModel::fit(delay_samples(dev));
  EXPECT_GT(m.r2(), 0.98);
}

TEST(FittedDelayModel, ShapeMatchesPaper) {
  // Eq. (2): delay = k0 + k1 e^(k3 Vth) + k2 Tox with small positive k3
  // and positive linear Tox slope.
  const DeviceModel dev(bptm65());
  const auto m = FittedDelayModel::fit(delay_samples(dev));
  EXPECT_GT(m.k3(), 0.0);
  EXPECT_GT(m.k1(), 0.0);
  EXPECT_GT(m.k2(), 0.0);
}

TEST(FittedDelayModel, MonotoneOverKnobWindow) {
  const DeviceModel dev(bptm65());
  const auto m = FittedDelayModel::fit(delay_samples(dev));
  for (double tox : {10.0, 12.0, 14.0}) {
    EXPECT_LT(m({0.2, tox}), m({0.5, tox}));
  }
  for (double vth : {0.2, 0.35, 0.5}) {
    EXPECT_LT(m({vth, 10.0}), m({vth, 14.0}));
  }
}

TEST(FittedDelayModel, LinearInToxAtFixedVth) {
  // The fitted form is exactly linear in Tox: equal steps, equal deltas.
  const DeviceModel dev(bptm65());
  const auto m = FittedDelayModel::fit(delay_samples(dev));
  const double d1 = m({0.3, 11.0}) - m({0.3, 10.0});
  const double d2 = m({0.3, 14.0}) - m({0.3, 13.0});
  EXPECT_NEAR(d1, d2, std::abs(d1) * 1e-9);
}

TEST(FittedDelayModel, DefaultConstructedIsZero) {
  FittedDelayModel m;
  EXPECT_DOUBLE_EQ(m({0.3, 12.0}), 0.0);
  FittedLeakageModel l;
  EXPECT_DOUBLE_EQ(l({0.3, 12.0}), 0.0);
}

}  // namespace
}  // namespace nanocache::tech
