// Unit tests for the stage-delay primitives: Horowitz approximation, RC
// stages, driver chains and repeater-segmented wires.
#include <gtest/gtest.h>

#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::tech {
namespace {

DeviceModel make_model() { return DeviceModel(bptm65()); }

TEST(Horowitz, StepInputIsPlainRc) {
  EXPECT_NEAR(horowitz(0.0, 10e-12, 0.5), 6.9e-12, 1e-15);
}

TEST(Horowitz, ZeroTimeConstantIsZero) {
  EXPECT_DOUBLE_EQ(horowitz(5e-12, 0.0, 0.5), 0.0);
}

TEST(Horowitz, SlowerInputRampIncreasesDelay) {
  const double tf = 10e-12;
  const double fast = horowitz(1e-12, tf, 0.5);
  const double slow = horowitz(40e-12, tf, 0.5);
  EXPECT_GT(slow, fast);
}

TEST(Horowitz, RejectsBadThreshold) {
  EXPECT_THROW(horowitz(0.0, 1e-12, 0.0), Error);
  EXPECT_THROW(horowitz(0.0, 1e-12, 1.0), Error);
  EXPECT_THROW(horowitz(0.0, -1e-12, 0.5), Error);
}

TEST(GateStage, DelayScalesWithRc) {
  const auto a = gate_stage(1000.0, 10e-15, 0.0);
  const auto b = gate_stage(2000.0, 10e-15, 0.0);
  EXPECT_NEAR(b.delay_s / a.delay_s, 2.0, 1e-9);
  EXPECT_GT(b.out_ramp_s, a.out_ramp_s);
}

TEST(GateStage, RejectsNegativeInputs) {
  EXPECT_THROW(gate_stage(-1.0, 1e-15, 0.0), Error);
  EXPECT_THROW(gate_stage(1.0, -1e-15, 0.0), Error);
}

TEST(DistributedRc, MatchesElmoreForm) {
  // driver 1k, wire 500 ohm / 20 fF, end load 5 fF.
  const double d = distributed_rc_delay(1000.0, 500.0, 20e-15, 5e-15);
  const double elmore = 0.69 * (1000.0 * 25e-15 + 500.0 * (10e-15 + 5e-15));
  EXPECT_NEAR(d, elmore, 1e-18);
}

TEST(DistributedRc, ZeroWireIsLumpedRc) {
  EXPECT_NEAR(distributed_rc_delay(1000.0, 0.0, 0.0, 10e-15),
              0.69 * 1000.0 * 10e-15, 1e-18);
}

TEST(DriverChain, MoreLoadMoreStages) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  const auto small = driver_chain(dev, k, 1.0, 10e-15);
  const auto large = driver_chain(dev, k, 1.0, 3000e-15);
  EXPECT_GE(large.stages, small.stages);
  EXPECT_GT(large.total_width_um, small.total_width_um);
  EXPECT_GT(large.delay_s, small.delay_s);
}

TEST(DriverChain, DelayRisesWithVth) {
  const auto dev = make_model();
  const auto fast = driver_chain(dev, {0.2, 12.0}, 1.0, 200e-15);
  const auto slow = driver_chain(dev, {0.5, 12.0}, 1.0, 200e-15);
  EXPECT_GT(slow.delay_s, fast.delay_s);
}

TEST(DriverChain, DelayRisesWithTox) {
  const auto dev = make_model();
  const auto thin = driver_chain(dev, {0.3, 10.0}, 1.0, 200e-15);
  const auto thick = driver_chain(dev, {0.3, 14.0}, 1.0, 200e-15);
  EXPECT_GT(thick.delay_s, thin.delay_s);
}

TEST(DriverChain, RejectsBadFirstStage) {
  const auto dev = make_model();
  EXPECT_THROW(driver_chain(dev, {0.3, 12.0}, 0.0, 1e-15), Error);
  EXPECT_THROW(driver_chain(dev, {0.3, 12.0}, 1.0, -1e-15), Error);
}

TEST(RepeatedWire, SegmentsByLength) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  const auto short_wire = repeated_wire(dev, k, 300.0, 5e-15);
  const auto long_wire = repeated_wire(dev, k, 3000.0, 5e-15);
  EXPECT_EQ(short_wire.segments, 1);
  EXPECT_EQ(long_wire.segments, 8);  // ceil(3000/400)
  EXPECT_GT(long_wire.total_width_um, short_wire.total_width_um);
}

TEST(RepeatedWire, DelayNearlyLinearInLength) {
  // The whole point of repeaters: doubling the wire roughly doubles delay
  // (unrepeated RC would quadruple it).
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  const double d1 = repeated_wire(dev, k, 2000.0, 0.0).delay_s;
  const double d2 = repeated_wire(dev, k, 4000.0, 0.0).delay_s;
  EXPECT_GT(d2 / d1, 1.7);
  EXPECT_LT(d2 / d1, 2.3);
}

TEST(RepeatedWire, BeatsUnrepeatedOnLongWires) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  const auto& p = dev.params();
  const double length = 4000.0;
  const double r_wire = length * p.rwire_ohm_per_um;
  const double c_wire = length * p.cwire_f_per_um;
  const double unrepeated = distributed_rc_delay(
      dev.effective_resistance_ohm(kRepeaterWidthUm, k), r_wire, c_wire, 0.0);
  EXPECT_LT(repeated_wire(dev, k, length, 0.0).delay_s, unrepeated);
}

TEST(RepeatedWire, RejectsBadInputs) {
  const auto dev = make_model();
  EXPECT_THROW(repeated_wire(dev, {0.3, 12.0}, 0.0, 0.0), Error);
  EXPECT_THROW(repeated_wire(dev, {0.3, 12.0}, 100.0, -1e-15), Error);
}

}  // namespace
}  // namespace nanocache::tech
