// Randomized property tests across module boundaries: organization fuzz,
// random-assignment consistency, DP-vs-thinning quality, and three-way
// optimizer agreement (exact DP vs annealing vs continuous).
#include <gtest/gtest.h>

#include <memory>

#include "cachemodel/fitted_cache.h"
#include "sim/hierarchy.h"
#include "util/error.h"
#include "energy/memory_system.h"
#include "opt/anneal.h"
#include "opt/continuous.h"
#include "opt/tuple_menu.h"
#include "util/rng.h"

namespace nanocache {
namespace {

using cachemodel::CacheModel;
using cachemodel::CacheOrganization;
using cachemodel::ComponentAssignment;

TEST(FuzzOrganization, RandomValidOrgsEvaluateSanely) {
  Rng rng(99);
  tech::DeviceModel dev(tech::bptm65());
  int built = 0;
  for (int trial = 0; trial < 200 && built < 40; ++trial) {
    CacheOrganization org;
    org.size_bytes = 1024ull << rng.below(13);            // 1K..4M
    org.block_bytes = 8u << rng.below(4);                 // 8..64
    org.associativity = 1u << rng.below(4);               // 1..8
    org.ndwl = 1u << rng.below(5);
    org.ndbl = 1u << rng.below(5);
    org.nspd = 1u << rng.below(3);
    org.data_bus_bits = 32u << rng.below(3);
    try {
      org.validate();
    } catch (const Error&) {
      continue;  // invalid draw; the point is valid ones never misbehave
    }
    ++built;
    CacheModel model(org, tech::DeviceModel(dev.params()));
    const auto fast = model.evaluate_uniform({0.2, 10.0});
    const auto slow = model.evaluate_uniform({0.5, 14.0});
    ASSERT_GT(fast.access_time_s, 0.0) << org.describe();
    ASSERT_LT(fast.access_time_s, slow.access_time_s) << org.describe();
    ASSERT_GT(fast.leakage_w, slow.leakage_w) << org.describe();
    ASSERT_GT(slow.leakage_w, 0.0) << org.describe();
  }
  EXPECT_GE(built, 20);  // the fuzz actually exercised real organizations
}

TEST(FuzzAssignment, RandomAssignmentsBracketedByCorners) {
  // Any assignment's delay/leakage lies between the all-fast and all-slow
  // corners (component-wise monotonicity lifted to the cache level).
  tech::DeviceModel dev(tech::bptm65());
  CacheModel model(cachemodel::l1_organization(16 * 1024, dev),
                   tech::DeviceModel(dev.params()));
  const auto fast = model.evaluate_uniform({0.2, 10.0});
  const auto slow = model.evaluate_uniform({0.5, 14.0});
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    ComponentAssignment a;
    for (auto kind : cachemodel::kAllComponents) {
      a.set(kind, {0.2 + 0.3 * rng.uniform(), 10.0 + 4.0 * rng.uniform()});
    }
    const auto m = model.evaluate(a);
    EXPECT_GE(m.access_time_s, fast.access_time_s * (1 - 1e-9)) << trial;
    EXPECT_LE(m.access_time_s, slow.access_time_s * (1 + 1e-9)) << trial;
    EXPECT_LE(m.leakage_w, fast.leakage_w * (1 + 1e-9)) << trial;
    EXPECT_GE(m.leakage_w, slow.leakage_w * (1 - 1e-9)) << trial;
  }
}

TEST(FuzzOptimizers, ThreeWayAgreementOnFittedObjective) {
  // Exact DP, annealing and the continuous solver attack the same fitted
  // objective; their optima must nest correctly at random targets.
  tech::DeviceModel dev(tech::bptm65());
  CacheModel model(cachemodel::l1_organization(16 * 1024, dev),
                   tech::DeviceModel(dev.params()));
  const auto fits = cachemodel::FittedCacheModel::fit(model);
  const auto eval = opt::fitted_evaluator(fits, model);
  const auto grid = opt::KnobGrid::paper_default();
  const auto range = dev.params().knobs;
  const double lo =
      opt::min_access_time(eval, grid, opt::Scheme::kArrayPeriphery);

  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const double target = lo * (1.05 + rng.uniform() * 0.9);
    const auto exact = opt::optimize_single_cache(
        eval, grid, opt::Scheme::kArrayPeriphery, target);
    const auto sa = opt::anneal_single_cache(
        eval, grid, opt::Scheme::kArrayPeriphery, target);
    const auto cont = opt::optimize_continuous(
        fits, range, opt::Scheme::kArrayPeriphery, target);
    ASSERT_TRUE(exact && sa && cont) << target;
    // continuous <= exact grid <= annealing (with heuristic slack).
    EXPECT_LE(cont->leakage_w, exact->leakage_w * (1 + 1e-6)) << target;
    EXPECT_GE(sa->leakage_w, exact->leakage_w * (1 - 1e-9)) << target;
    EXPECT_LE(sa->leakage_w, exact->leakage_w * 1.10) << target;
  }
}

TEST(FuzzTupleThinning, ThinnedFrontierCloseToUnthinnedSmallInstance) {
  // On a menu small enough to enumerate, the default (thinned) frontier
  // must match the best_at answers, which bypass frontier thinning.
  tech::DeviceModel dev(tech::bptm65());
  CacheModel l1(cachemodel::l1_organization(16 * 1024, dev),
                tech::DeviceModel(dev.params()));
  CacheModel l2(cachemodel::l2_organization(512 * 1024, dev),
                tech::DeviceModel(dev.params()));
  energy::MemorySystemModel system(l1, l2, {0.0318, 0.189});
  opt::KnobGrid tiny;
  tiny.vth_values = {0.25, 0.40};
  tiny.tox_values = {11.0, 13.0};
  const opt::TupleMenuSolver solver(system, tiny);
  const auto front = solver.frontier({2, 2}, 200);
  ASSERT_GT(front.size(), 3u);
  for (std::size_t i = 0; i < front.size(); i += front.size() / 4 + 1) {
    const auto best = solver.best_at({2, 2}, front[i].amat_s * (1 + 1e-9));
    ASSERT_TRUE(best.has_value());
    EXPECT_LE(best->energy_j, front[i].energy_j * (1 + 1e-6)) << i;
    EXPECT_GE(best->energy_j, front[i].energy_j * (1 - 0.02)) << i;
  }
}

TEST(FuzzTrace, HierarchyCountersAlwaysConsistent) {
  // Random traces: derived identities between counters must always hold.
  Rng rng(31);
  sim::TwoLevelHierarchy h(sim::SetAssociativeCache(4096, 32, 2),
                           sim::SetAssociativeCache(64 * 1024, 64, 8));
  for (int i = 0; i < 50000; ++i) {
    h.access(rng.below(1 << 22) & ~3ull, rng.uniform() < 0.3);
  }
  const auto& s = h.stats();
  EXPECT_LE(s.l1_misses, s.references);
  EXPECT_LE(s.l2_misses, s.l2_accesses);
  // Every demand L2 access is an L1 miss or an L1 writeback.
  EXPECT_EQ(s.l2_accesses, s.l1_misses + s.l1_writebacks);
  // Memory accesses: one per L2 miss plus one per L2 writeback.
  EXPECT_EQ(s.memory_accesses, s.l2_misses + s.l2_writebacks);
}

}  // namespace
}  // namespace nanocache
