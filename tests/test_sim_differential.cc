// Differential test: the production set-associative cache against a
// deliberately naive reference model (tag vectors + explicit LRU lists),
// driven by randomized traces.  Any divergence in hit/miss/writeback
// behaviour or final contents fails the fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "sim/cache.h"
#include "util/rng.h"

namespace nanocache::sim {
namespace {

/// Straight-line reference implementation of a write-back, write-allocate
/// LRU cache.  Clarity over speed; no shared code with the real one.
class ReferenceCache {
 public:
  ReferenceCache(std::uint64_t size, std::uint32_t block, std::uint32_t assoc)
      : block_(block),
        assoc_(assoc),
        num_sets_(size / (static_cast<std::uint64_t>(block) * assoc)),
        sets_(num_sets_) {}

  struct Outcome {
    bool hit = false;
    bool writeback = false;
  };

  Outcome access(std::uint64_t address, bool is_write) {
    const std::uint64_t blk = address / block_;
    auto& set = sets_[blk % num_sets_];
    Outcome out;
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->block == blk) {
        out.hit = true;
        it->dirty = it->dirty || is_write;
        // Move to MRU position.
        set.splice(set.begin(), set, it);
        return out;
      }
    }
    if (set.size() == assoc_) {
      if (set.back().dirty) out.writeback = true;
      set.pop_back();
    }
    set.push_front(Entry{blk, is_write});
    return out;
  }

  bool contains(std::uint64_t address) const {
    const std::uint64_t blk = address / block_;
    const auto& set = sets_[blk % num_sets_];
    return std::any_of(set.begin(), set.end(),
                       [&](const Entry& e) { return e.block == blk; });
  }

 private:
  struct Entry {
    std::uint64_t block;
    bool dirty;
  };
  std::uint64_t block_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  std::vector<std::list<Entry>> sets_;
};

struct Geometry {
  std::uint64_t size;
  std::uint32_t block;
  std::uint32_t assoc;
};

class DifferentialFuzz : public ::testing::TestWithParam<Geometry> {};

TEST_P(DifferentialFuzz, LruAgreesWithReferenceOnRandomTraces) {
  const auto g = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SetAssociativeCache dut(g.size, g.block, g.assoc, Replacement::kLru);
    ReferenceCache ref(g.size, g.block, g.assoc);
    Rng rng(seed);
    // Footprint ~4x the cache: plenty of capacity and conflict misses.
    const std::uint64_t footprint = g.size * 4;
    for (int i = 0; i < 30000; ++i) {
      const std::uint64_t addr = rng.below(footprint) & ~7ull;
      const bool is_write = rng.uniform() < 0.3;
      const auto d = dut.access(addr, is_write);
      const auto r = ref.access(addr, is_write);
      ASSERT_EQ(d.hit, r.hit) << "seed " << seed << " step " << i;
      ASSERT_EQ(d.writeback, r.writeback) << "seed " << seed << " step " << i;
    }
    // Final contents agree on a sample of the footprint.
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t addr = rng.below(footprint) & ~7ull;
      ASSERT_EQ(dut.contains(addr), ref.contains(addr)) << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DifferentialFuzz,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 64, 4}, Geometry{8192, 32, 8},
                      Geometry{2048, 64, 2}, Geometry{512, 32, 16}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size) + "b" +
             std::to_string(info.param.block) + "w" +
             std::to_string(info.param.assoc);
    });

}  // namespace
}  // namespace nanocache::sim
