// Tests for the synthetic workload generators: determinism, footprint
// confinement, locality signatures, and mixing.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/generators.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

TEST(StrideGenerator, WalksFootprintAndWraps) {
  StrideGenerator g(0x1000, 64, 256, 0.0, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(g.next().address, 0x1000u + static_cast<std::uint64_t>(i) * 64);
  }
  EXPECT_EQ(g.next().address, 0x1000u);  // wrapped
}

TEST(StrideGenerator, WriteFractionRespected) {
  StrideGenerator g(0, 8, 1 << 20, 0.25, 7);
  int writes = 0;
  for (int i = 0; i < 10000; ++i) {
    if (g.next().is_write) ++writes;
  }
  EXPECT_NEAR(writes / 10000.0, 0.25, 0.02);
}

TEST(StrideGenerator, Validates) {
  EXPECT_THROW(StrideGenerator(0, 0, 100, 0.0, 1), Error);
  EXPECT_THROW(StrideGenerator(0, 64, 32, 0.0, 1), Error);
  EXPECT_THROW(StrideGenerator(0, 8, 100, 1.5, 1), Error);
}

TEST(WorkingSetGenerator, DeterministicForSeed) {
  WorkingSetGenerator::Config cfg;
  WorkingSetGenerator a(cfg, 42);
  WorkingSetGenerator b(cfg, 42);
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    EXPECT_EQ(x.address, y.address);
    EXPECT_EQ(x.is_write, y.is_write);
  }
}

TEST(WorkingSetGenerator, StaysInsideFootprint) {
  WorkingSetGenerator::Config cfg;
  cfg.base = 0x10000;
  cfg.footprint_bytes = 1 << 20;
  WorkingSetGenerator g(cfg, 5);
  for (int i = 0; i < 20000; ++i) {
    const auto a = g.next().address;
    EXPECT_GE(a, cfg.base);
    EXPECT_LT(a, cfg.base + cfg.footprint_bytes);
  }
}

TEST(WorkingSetGenerator, SequentialRuns) {
  WorkingSetGenerator::Config cfg;
  cfg.run_length = 4;
  WorkingSetGenerator g(cfg, 9);
  // Within a run, consecutive addresses differ by 8.
  const auto first = g.next().address;
  EXPECT_EQ(g.next().address, first + 8);
  EXPECT_EQ(g.next().address, first + 16);
  EXPECT_EQ(g.next().address, first + 24);
}

TEST(WorkingSetGenerator, SkewConcentratesTraffic) {
  // With strong skew, a small fraction of pages should absorb most
  // accesses.
  WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 1 << 20;
  cfg.page_bytes = 4096;  // 256 pages
  cfg.zipf_s = 1.3;
  WorkingSetGenerator g(cfg, 13);
  std::map<std::uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[g.next().address / cfg.page_bytes];
  }
  std::vector<int> sorted;
  for (const auto& [page, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  int top16 = 0;
  for (int i = 0; i < 16 && i < static_cast<int>(sorted.size()); ++i) {
    top16 += sorted[i];
  }
  EXPECT_GT(static_cast<double>(top16) / n, 0.5);
}

TEST(WorkingSetGenerator, Validates) {
  WorkingSetGenerator::Config cfg;
  cfg.page_bytes = 32;  // < 64 minimum
  EXPECT_THROW(WorkingSetGenerator(cfg, 1), Error);
  cfg = {};
  cfg.zipf_s = 0.0;
  EXPECT_THROW(WorkingSetGenerator(cfg, 1), Error);
  cfg = {};
  cfg.run_length = 0;
  EXPECT_THROW(WorkingSetGenerator(cfg, 1), Error);
}

TEST(PointerChase, VisitsEveryNodeOnce) {
  // Sattolo cycle: a walk of N steps from any start visits N distinct
  // nodes and returns to the start.
  const std::uint64_t footprint = 64 * 128;  // 128 nodes of 64 B
  PointerChaseGenerator g(0, footprint, 64, 3);
  std::set<std::uint64_t> seen;
  const auto first = g.next().address;
  seen.insert(first);
  for (int i = 1; i < 128; ++i) {
    const auto a = g.next().address;
    EXPECT_TRUE(seen.insert(a).second) << "revisit at step " << i;
  }
  EXPECT_EQ(g.next().address, first);  // cycle closes
}

TEST(PointerChase, NoSpatialLocality) {
  PointerChaseGenerator g(0, 1 << 20, 64, 11);
  int adjacent = 0;
  std::uint64_t prev = g.next().address;
  for (int i = 0; i < 2000; ++i) {
    const auto a = g.next().address;
    if (a == prev + 64 || a + 64 == prev) ++adjacent;
    prev = a;
  }
  EXPECT_LT(adjacent, 20);  // ~0.2% by chance, not a pattern
}

TEST(PointerChase, ReadsOnly) {
  PointerChaseGenerator g(0, 1 << 16, 64, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.next().is_write);
  }
}

TEST(PointerChase, Validates) {
  EXPECT_THROW(PointerChaseGenerator(0, 100, 4, 1), Error);   // node < 8
  EXPECT_THROW(PointerChaseGenerator(0, 64, 64, 1), Error);   // < 2 nodes
}

TEST(MixGenerator, DrawsFromAllSources) {
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(std::make_unique<StrideGenerator>(0x0, 8, 1024, 0.0, 1));
  parts.push_back(
      std::make_unique<StrideGenerator>(0x10000000, 8, 1024, 0.0, 2));
  MixGenerator mix(std::move(parts), {0.5, 0.5}, 77);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 4000; ++i) {
    if (mix.next().address < 0x10000000) {
      ++low;
    } else {
      ++high;
    }
  }
  EXPECT_NEAR(low / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(high / 4000.0, 0.5, 0.05);
}

TEST(MixGenerator, WeightsBias) {
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(std::make_unique<StrideGenerator>(0x0, 8, 1024, 0.0, 1));
  parts.push_back(
      std::make_unique<StrideGenerator>(0x10000000, 8, 1024, 0.0, 2));
  MixGenerator mix(std::move(parts), {0.9, 0.1}, 77);
  int low = 0;
  for (int i = 0; i < 4000; ++i) {
    if (mix.next().address < 0x10000000) ++low;
  }
  EXPECT_NEAR(low / 4000.0, 0.9, 0.03);
}

TEST(MixGenerator, Validates) {
  std::vector<std::unique_ptr<TraceSource>> empty;
  EXPECT_THROW(MixGenerator(std::move(empty), {}, 1), Error);
  std::vector<std::unique_ptr<TraceSource>> one;
  one.push_back(std::make_unique<StrideGenerator>(0, 8, 1024, 0.0, 1));
  EXPECT_THROW(MixGenerator(std::move(one), {0.5, 0.5}, 1), Error);
  std::vector<std::unique_ptr<TraceSource>> neg;
  neg.push_back(std::make_unique<StrideGenerator>(0, 8, 1024, 0.0, 1));
  EXPECT_THROW(MixGenerator(std::move(neg), {-1.0}, 1), Error);
}

TEST(VectorTrace, ReplaysAndWraps) {
  VectorTrace t({{1, false}, {2, true}});
  EXPECT_EQ(t.next().address, 1u);
  EXPECT_TRUE(t.next().is_write);
  EXPECT_EQ(t.next().address, 1u);  // wrapped
  EXPECT_EQ(t.size(), 2u);
}

}  // namespace
}  // namespace nanocache::sim
