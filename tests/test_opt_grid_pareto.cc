// Tests for the optimizer building blocks: discrete knob grids, subset
// enumeration for process menus, and the Pareto-filter primitives the DP
// optimizers rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/grid.h"
#include "opt/pareto.h"
#include "util/error.h"
#include "util/rng.h"

namespace nanocache::opt {
namespace {

TEST(KnobGrid, PaperDefaultMatchesSection2) {
  const auto g = KnobGrid::paper_default();
  ASSERT_EQ(g.vth_values.size(), 7u);
  ASSERT_EQ(g.tox_values.size(), 5u);
  EXPECT_DOUBLE_EQ(g.vth_values.front(), 0.20);
  EXPECT_DOUBLE_EQ(g.vth_values.back(), 0.50);
  EXPECT_NEAR(g.vth_values[1] - g.vth_values[0], 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(g.tox_values.front(), 10.0);
  EXPECT_DOUBLE_EQ(g.tox_values.back(), 14.0);
}

TEST(KnobGrid, PairsAreCartesianProduct) {
  const auto g = KnobGrid::paper_default();
  const auto pairs = g.pairs();
  EXPECT_EQ(pairs.size(), 35u);
  // vth-major: first 5 share vth=0.2.
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(pairs[i].vth_v, 0.20);
    EXPECT_DOUBLE_EQ(pairs[i].tox_a, 10.0 + i);
  }
}

TEST(KnobGrid, FineGridDenser) {
  const auto fine = KnobGrid::fine();
  EXPECT_GT(fine.pairs().size(), KnobGrid::paper_default().pairs().size());
}

TEST(KnobGrid, ValidatesOrdering) {
  KnobGrid g;
  g.vth_values = {0.3, 0.2};
  g.tox_values = {10, 11};
  EXPECT_THROW(g.validate(), Error);
  g.vth_values = {};
  EXPECT_THROW(g.validate(), Error);
}

TEST(ChooseSubsets, CountsMatchBinomial) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(choose_subsets(v, 1).size(), 5u);
  EXPECT_EQ(choose_subsets(v, 2).size(), 10u);
  EXPECT_EQ(choose_subsets(v, 3).size(), 10u);
  EXPECT_EQ(choose_subsets(v, 5).size(), 1u);
}

TEST(ChooseSubsets, SubsetsSortedAndDistinct) {
  const std::vector<double> v = {1, 2, 3, 4};
  const auto subsets = choose_subsets(v, 2);
  for (const auto& s : subsets) {
    ASSERT_EQ(s.size(), 2u);
    EXPECT_LT(s[0], s[1]);
  }
  // All distinct.
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    for (std::size_t j = i + 1; j < subsets.size(); ++j) {
      EXPECT_TRUE(subsets[i] != subsets[j]);
    }
  }
}

TEST(ChooseSubsets, Validates) {
  EXPECT_THROW(choose_subsets({1.0}, 2), Error);
  EXPECT_THROW(choose_subsets({1.0, 2.0}, 0), Error);
}

TEST(MenuPairs, CrossProduct) {
  const auto pairs = menu_pairs({0.2, 0.4}, {10, 12, 14});
  EXPECT_EQ(pairs.size(), 6u);
  EXPECT_THROW(menu_pairs({}, {10.0}), Error);
}

// --- Pareto primitives -------------------------------------------------------

struct P2 {
  double x, y;
};

TEST(ParetoMin2, KeepsOnlyNonDominated) {
  std::vector<P2> pts = {{1, 5}, {2, 3}, {3, 4}, {4, 1}, {5, 2}};
  const auto front = pareto_min2(
      pts, [](const P2& p) { return p.x; }, [](const P2& p) { return p.y; });
  // (3,4) dominated by (2,3); (5,2) dominated by (4,1).
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].x, 1);
  EXPECT_DOUBLE_EQ(front[1].x, 2);
  EXPECT_DOUBLE_EQ(front[2].x, 4);
}

TEST(ParetoMin2, SinglePointSurvives) {
  std::vector<P2> pts = {{1, 1}};
  EXPECT_EQ(pareto_min2(
                pts, [](const P2& p) { return p.x; },
                [](const P2& p) { return p.y; })
                .size(),
            1u);
}

TEST(ParetoMin2, DuplicatesCollapse) {
  std::vector<P2> pts = {{1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(pareto_min2(
                pts, [](const P2& p) { return p.x; },
                [](const P2& p) { return p.y; })
                .size(),
            1u);
}

struct P3 {
  double x, y, z;
};

bool dominates(const P3& a, const P3& b) {
  return a.x <= b.x && a.y <= b.y && a.z <= b.z &&
         (a.x < b.x || a.y < b.y || a.z < b.z);
}

TEST(ParetoMin3, AgreesWithBruteForceOnRandomClouds) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<P3> pts;
    for (int i = 0; i < 200; ++i) {
      pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    }
    const auto front = pareto_min3(
        pts, [](const P3& p) { return p.x; }, [](const P3& p) { return p.y; },
        [](const P3& p) { return p.z; });
    // Brute-force count of non-dominated points.
    int expected = 0;
    for (const auto& a : pts) {
      bool dominated = false;
      for (const auto& b : pts) {
        if (dominates(b, a)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) ++expected;
    }
    EXPECT_EQ(static_cast<int>(front.size()), expected) << "trial " << trial;
    // And every survivor must itself be non-dominated in the original set.
    for (const auto& a : front) {
      for (const auto& b : pts) {
        EXPECT_FALSE(dominates(b, a));
      }
    }
  }
}

TEST(ParetoMin3, AntichainSurvivesWhole) {
  // Points on x+y+z = const with distinct coordinates: none dominates.
  std::vector<P3> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(9 - i),
                   std::sin(i) * 0.0 + (i % 2 ? 1.0 : 2.0)});
  }
  // Make z an antichain dimension too: z = 10 - x - y is constant here,
  // so vary z downward with x to preserve the antichain.
  pts.clear();
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(9 - i),
                   static_cast<double>(i % 5)});
  }
  const auto front = pareto_min3(
      pts, [](const P3& p) { return p.x; }, [](const P3& p) { return p.y; },
      [](const P3& p) { return p.z; });
  // Verify against brute force rather than assuming all survive.
  int expected = 0;
  for (const auto& a : pts) {
    bool dominated = false;
    for (const auto& b : pts) {
      if (dominates(b, a)) dominated = true;
    }
    if (!dominated) ++expected;
  }
  EXPECT_EQ(static_cast<int>(front.size()), expected);
}

TEST(ThinTo, KeepsEndsAndBounds) {
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  thin_to(v, 10);
  ASSERT_LE(v.size(), 10u);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 99);
}

TEST(ThinTo, NoopWhenSmall) {
  std::vector<int> v = {1, 2, 3};
  thin_to(v, 10);
  EXPECT_EQ(v.size(), 3u);
  thin_to(v, 1);  // cap < 2 is a no-op by contract
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace nanocache::opt
