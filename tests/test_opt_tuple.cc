// Tests for the (Tox, Vth) tuple-menu solver: feasibility, constraint
// satisfaction, monotonicity in menu cardinality, agreement with a
// brute-force assignment search on a tiny instance, and the Figure 2
// orderings.
#include <gtest/gtest.h>

#include <memory>

#include "energy/memory_system.h"
#include "opt/tuple_menu.h"
#include "util/error.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;

struct SystemFixture {
  SystemFixture() {
    tech::DeviceModel dev(tech::bptm65());
    l1 = std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
    l2 = std::make_unique<CacheModel>(
        cachemodel::l2_organization(512 * 1024, dev),
        tech::DeviceModel(dev.params()));
    system = std::make_unique<energy::MemorySystemModel>(
        *l1, *l2, energy::MissRates{0.0318, 0.189},
        energy::MainMemoryParams{});
  }
  std::unique_ptr<CacheModel> l1;
  std::unique_ptr<CacheModel> l2;
  std::unique_ptr<energy::MemorySystemModel> system;
};

SystemFixture& fixture() {
  static SystemFixture f;
  return f;
}

TEST(TupleSolver, FrontierIsSortedAndNonDominated) {
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  const auto front = solver.frontier({2, 2}, 64);
  ASSERT_GT(front.size(), 5u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].amat_s, front[i - 1].amat_s);
    EXPECT_LT(front[i].energy_j, front[i - 1].energy_j);
  }
}

TEST(TupleSolver, BestAtRespectsConstraint) {
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  const double min_amat = solver.min_amat_s({2, 2});
  const auto r = solver.best_at({2, 2}, min_amat * 1.2);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->amat_s, min_amat * 1.2 * (1 + 1e-12));
  EXPECT_FALSE(solver.best_at({2, 2}, min_amat * 0.5).has_value());
  EXPECT_THROW(solver.best_at({2, 2}, -1.0), Error);
}

TEST(TupleSolver, DesignRespectsMenuCardinality) {
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  const double t = solver.min_amat_s({2, 2}) * 1.25;
  const auto r = solver.best_at({2, 2}, t);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tox_menu.size(), 2u);
  EXPECT_EQ(r->vth_menu.size(), 2u);
  // Every assigned knob pair must come from the menu.
  auto in_menu = [&](const tech::DeviceKnobs& k) {
    bool vth_ok = false;
    bool tox_ok = false;
    for (double v : r->vth_menu) vth_ok |= (v == k.vth_v);
    for (double t2 : r->tox_menu) tox_ok |= (t2 == k.tox_a);
    return vth_ok && tox_ok;
  };
  for (ComponentKind kind : kAllComponents) {
    EXPECT_TRUE(in_menu(r->l1.get(kind)));
    EXPECT_TRUE(in_menu(r->l2.get(kind)));
  }
}

TEST(TupleSolver, MoreMenuFreedomNeverHurts) {
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  const double t = solver.min_amat_s({1, 1}) * 1.1;
  const auto e11 = solver.best_at({1, 1}, t);
  const auto e22 = solver.best_at({2, 2}, t);
  const auto e33 = solver.best_at({3, 3}, t);
  ASSERT_TRUE(e11 && e22 && e33);
  // Supersets of menus can only improve the optimum (DP is exact up to the
  // documented thinning; allow a hair of slack for it).
  EXPECT_LE(e22->energy_j, e11->energy_j * 1.02);
  EXPECT_LE(e33->energy_j, e22->energy_j * 1.02);
}

TEST(TupleSolver, EnergyMatchesSystemEvaluation) {
  // The DP's weighted sums must agree with the full MemorySystemModel
  // evaluation of the returned assignment (nominal coupling).
  const auto& f = fixture();
  const TupleMenuSolver solver(*f.system, KnobGrid::paper_default());
  const auto r = solver.best_at({2, 2}, solver.min_amat_s({2, 2}) * 1.3);
  ASSERT_TRUE(r.has_value());
  const auto m = f.system->evaluate(r->l1, r->l2);
  EXPECT_NEAR(m.amat_s, r->amat_s, r->amat_s * 1e-9);
  EXPECT_NEAR(m.total_energy_j, r->energy_j, r->energy_j * 1e-9);
  EXPECT_NEAR(m.leakage_w, r->leakage_w, r->leakage_w * 1e-9);
}

TEST(TupleSolver, MatchesBruteForceOnTinyInstance) {
  // 1 Tox x 2 Vth menu, fixed menu values: per-component choice is binary,
  // so the full 2^8 assignment space is enumerable.
  const auto& f = fixture();
  KnobGrid tiny;
  tiny.vth_values = {0.30, 0.45};
  tiny.tox_values = {12.0};
  const TupleMenuSolver solver(*f.system, tiny);
  const double target = solver.min_amat_s({1, 2}) * 1.15;
  const auto fast = solver.best_at({1, 2}, target);
  ASSERT_TRUE(fast.has_value());

  const auto pairs = menu_pairs({0.30, 0.45}, {12.0});
  double best_energy = 1e9;
  for (int mask = 0; mask < 256; ++mask) {
    cachemodel::ComponentAssignment a1;
    cachemodel::ComponentAssignment a2;
    for (int c = 0; c < 4; ++c) {
      a1.set(static_cast<ComponentKind>(c), pairs[(mask >> c) & 1]);
      a2.set(static_cast<ComponentKind>(c), pairs[(mask >> (4 + c)) & 1]);
    }
    const auto m = f.system->evaluate(a1, a2);
    if (m.amat_s <= target && m.total_energy_j < best_energy) {
      best_energy = m.total_energy_j;
    }
  }
  EXPECT_NEAR(fast->energy_j, best_energy, best_energy * 1e-6);
}

TEST(TupleSolver, Figure2HeadlineOrderings) {
  // The claims the paper draws from Figure 2, evaluated at a mid target.
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  const double t = solver.min_amat_s({3, 3}) * 1.45;
  const auto e22 = solver.best_at({2, 2}, t);
  const auto e23 = solver.best_at({2, 3}, t);
  const auto e12 = solver.best_at({1, 2}, t);
  const auto e21 = solver.best_at({2, 1}, t);
  ASSERT_TRUE(e22 && e23 && e12 && e21);
  // 2 Tox + 3 Vth at least as good as 2+2; 2+2 within a few percent.
  EXPECT_LE(e23->energy_j, e22->energy_j * 1.02);
  EXPECT_LE(e22->energy_j, e23->energy_j * 1.06);
  // Vth is the stronger knob: 1 Tox + 2 Vth beats 2 Tox + 1 Vth here.
  EXPECT_LT(e12->energy_j, e21->energy_j);
}

TEST(TupleSolver, RejectsBadSpecs) {
  const TupleMenuSolver solver(*fixture().system, KnobGrid::paper_default());
  EXPECT_THROW(solver.best_at({0, 2}, 2e-9), Error);
  EXPECT_THROW(solver.best_at({2, 9}, 2e-9), Error);  // exceeds grid size
}

}  // namespace
}  // namespace nanocache::opt
