// Persistent cross-run result cache: cold/warm reuse with byte-identical
// responses, the corruption contract (truncated segment, garbage lines,
// checksum mismatches, and stale fingerprints degrade to recomputation —
// never to a wrong answer), typed kIo surfacing for an unusable directory,
// the v1 -> v2 schema normalization goldens, and the parse_response_json
// round-trip exactness the disk hit path depends on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/batch_io.h"
#include "api/disk_cache.h"
#include "nanocache/api.h"

namespace nanocache::api {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test cache directory under the GTest temp root.
fs::path test_cache_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("nanocache_" + name);
  fs::remove_all(dir);
  return dir;
}

std::shared_ptr<Service> make_service(ServiceConfig config = {}) {
  auto service = Service::create(std::move(config));
  EXPECT_TRUE(service.ok()) << service.error().message;
  return service.value();
}

/// A small mixed workload (kept fast: evals plus two optimizations).
std::vector<Request> small_workload() {
  std::vector<Request> requests;
  int next_id = 0;
  const auto push = [&](Request r) {
    r.id = "q" + std::to_string(next_id++);
    requests.push_back(std::move(r));
  };
  for (const double vth : {0.25, 0.35, 0.45}) {
    Request r;
    r.kind = RequestKind::kEval;
    r.eval.knobs = Knobs{vth, 12.0};
    push(std::move(r));
  }
  for (const double ps : {1400.0, 1600.0}) {
    Request r;
    r.kind = RequestKind::kOptimize;
    r.optimize.scheme = SchemeId::kII;
    r.optimize.delay.target_ps = ps;
    push(std::move(r));
  }
  return requests;
}

std::string serialized(const BatchResult& batch) {
  std::string bytes;
  for (const auto& response : batch.responses) {
    bytes += response_to_json(response);
    bytes += '\n';
  }
  return bytes;
}

/// The one segment file a cached run produced (fingerprint is internal, so
/// tests locate it by the documented naming pattern).
fs::path segment_path(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("nanocache-", 0) == 0) return entry.path();
  }
  ADD_FAILURE() << "no cache segment found in " << dir;
  return {};
}

/// Serve the workload through a fresh service bound to `dir` and return
/// (serialized bytes, batch stats).
BatchResult run_cached(const fs::path& dir,
                       const std::vector<Request>& workload) {
  ServiceConfig config;
  config.cache_dir = dir.string();
  return make_service(std::move(config))->run_batch(workload);
}

TEST(ApiDiskCache, ColdThenWarmRunIsByteIdenticalAndHits) {
  const auto dir = test_cache_dir("reuse");
  const auto workload = small_workload();
  const std::string reference = serialized(make_service()->run_batch(workload));

  const auto cold = run_cached(dir, workload);
  EXPECT_EQ(cold.stats.disk_hits, 0u);
  EXPECT_EQ(cold.stats.disk_misses, workload.size());  // no duplicates here
  EXPECT_EQ(serialized(cold), reference);

  const auto warm = run_cached(dir, workload);
  EXPECT_EQ(warm.stats.disk_hits, workload.size());
  EXPECT_EQ(warm.stats.disk_misses, 0u);
  // The headline contract: a disk hit serves the same bytes the original
  // computation (and an uncached service) produced.
  EXPECT_EQ(serialized(warm), reference);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, TruncatedSegmentFallsBackToComputation) {
  const auto dir = test_cache_dir("truncated");
  const auto workload = small_workload();
  const std::string reference = serialized(make_service()->run_batch(workload));
  run_cached(dir, workload);

  // Chop the file mid-entry, as a crash mid-append would.
  const auto path = segment_path(dir);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - size / 3);

  const auto after = run_cached(dir, workload);
  EXPECT_EQ(serialized(after), reference);
  // The intact prefix still hits; the severed tail recomputes.
  EXPECT_LT(after.stats.disk_hits, workload.size());
  EXPECT_GT(after.stats.disk_misses, 0u);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, GarbageLinesAreSkippedNeverServed) {
  const auto dir = test_cache_dir("garbage");
  const auto workload = small_workload();
  const std::string reference = serialized(make_service()->run_batch(workload));
  run_cached(dir, workload);

  {
    std::ofstream out(segment_path(dir), std::ios::app);
    out << "this is not a cache entry\n"
        << "{\"key\":\"missing the other fields\"}\n";
  }
  const auto after = run_cached(dir, workload);
  EXPECT_EQ(serialized(after), reference);
  EXPECT_EQ(after.stats.disk_hits, workload.size());
  fs::remove_all(dir);
}

TEST(ApiDiskCache, ChecksumMismatchDropsTheEntry) {
  const auto dir = test_cache_dir("checksum");
  const auto workload = small_workload();
  const std::string reference = serialized(make_service()->run_batch(workload));
  run_cached(dir, workload);

  // Flip response bytes inside one entry without touching its checksum: a
  // bit-rotted answer must be dropped, not served.
  const auto path = segment_path(dir);
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    bool corrupted = false;
    while (std::getline(in, line)) {
      const auto pos = line.find("leakage_mw");
      if (!corrupted && pos != std::string::npos) {
        line.replace(pos, 10, "leakage_MW");
        corrupted = true;
      }
      contents += line;
      contents += '\n';
    }
    EXPECT_TRUE(corrupted);
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }

  const auto after = run_cached(dir, workload);
  EXPECT_EQ(serialized(after), reference);
  EXPECT_EQ(after.stats.disk_hits, workload.size() - 1);
  EXPECT_EQ(after.stats.disk_misses, 1u);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, StaleFingerprintResetsTheSegment) {
  const auto dir = test_cache_dir("stale");
  const auto workload = small_workload();
  const std::string reference = serialized(make_service()->run_batch(workload));
  run_cached(dir, workload);

  // Rewrite the header with a different fingerprint: the segment now claims
  // to answer for another configuration and must be discarded whole.
  const auto path = segment_path(dir);
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    contents += "{\"nanocache_cache\":1,\"fingerprint\":\"";
    contents += fnv1a64_hex("a different configuration");
    contents += "\"}\n";
    while (std::getline(in, line)) {
      contents += line;
      contents += '\n';
    }
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }

  const auto after = run_cached(dir, workload);
  EXPECT_EQ(serialized(after), reference);
  EXPECT_EQ(after.stats.disk_hits, 0u);
  EXPECT_EQ(after.stats.disk_misses, workload.size());
  // And the reset re-populated the segment: the next run hits again.
  const auto warm = run_cached(dir, workload);
  EXPECT_EQ(warm.stats.disk_hits, workload.size());
  EXPECT_EQ(serialized(warm), reference);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, DifferentConfigurationsUseDifferentSegments) {
  const auto dir = test_cache_dir("fingerprints");
  const auto workload = small_workload();
  run_cached(dir, workload);

  ServiceConfig fitted;
  fitted.cache_dir = dir.string();
  fitted.use_fitted_models = true;
  const auto other = make_service(std::move(fitted))->run_batch(workload);
  // A differently configured service never reads the structural segment.
  EXPECT_EQ(other.stats.disk_hits, 0u);

  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segments;
  }
  EXPECT_EQ(segments, 2u);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, UnusableDirectoryIsATypedIoError) {
  // A path through a regular file cannot become a directory (works even
  // when running as root, unlike permission bits).
  const auto dir = test_cache_dir("unusable");
  fs::create_directories(dir);
  { std::ofstream block((dir / "blocker").string()); }

  ServiceConfig config;
  config.cache_dir = (dir / "blocker" / "sub").string();
  const auto outcome = Service::create(std::move(config));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kIo);
  fs::remove_all(dir);
}

TEST(ApiDiskCache, ExhaustiveSearchModeIsByteIdentical) {
  // The differential oracle wired through the public config: both engines
  // serve the same bytes (the pruned engine's correctness contract).
  const auto workload = small_workload();
  const auto pruned = make_service()->run_batch(workload);
  ServiceConfig config;
  config.exhaustive_search = true;
  const auto exhaustive = make_service(std::move(config))->run_batch(workload);
  EXPECT_EQ(serialized(pruned), serialized(exhaustive));
}

TEST(ApiV1Compat, V1RequestsNormalizeToV2AndAnswerIdentically) {
  // One golden per kind, in the v1 flat spelling.
  const std::vector<std::string> v1_lines = {
      "{\"schema_version\":1,\"id\":\"e\",\"kind\":\"eval\",\"level\":\"l1\","
      "\"size_bytes\":16384,\"vth_v\":0.3,\"tox_a\":13}",
      "{\"schema_version\":1,\"id\":\"o\",\"kind\":\"optimize\",\"level\":"
      "\"l1\",\"size_bytes\":16384,\"scheme\":\"II\",\"delay_ps\":1500}",
      "{\"schema_version\":1,\"id\":\"s\",\"kind\":\"sweep\",\"sweep\":"
      "\"schemes\",\"cache_size_bytes\":16384,\"delay_targets_ps\":[1500]}",
      "{\"schema_version\":1,\"id\":\"t\",\"kind\":\"tuple_menu\",\"num_tox\":"
      "2,\"num_vth\":2,\"amat_targets_ps\":[1700]}",
  };
  // The same requests in the v2 nested spelling.
  const std::vector<std::string> v2_lines = {
      "{\"schema_version\":2,\"id\":\"e\",\"kind\":\"eval\",\"target\":"
      "{\"level\":\"l1\",\"size_bytes\":16384},\"knobs\":{\"vth_v\":0.3,"
      "\"tox_a\":13}}",
      "{\"schema_version\":2,\"id\":\"o\",\"kind\":\"optimize\",\"target\":"
      "{\"level\":\"l1\",\"size_bytes\":16384},\"scheme\":\"II\",\"delay\":"
      "{\"target_ps\":1500}}",
      "{\"schema_version\":2,\"id\":\"s\",\"kind\":\"sweep\",\"sweep\":"
      "\"schemes\",\"target\":{\"size_bytes\":16384},\"delay\":"
      "{\"targets_ps\":[1500]}}",
      "{\"schema_version\":2,\"id\":\"t\",\"kind\":\"tuple_menu\",\"num_tox\":"
      "2,\"num_vth\":2,\"delay\":{\"targets_ps\":[1700]}}",
  };

  const auto service = make_service();
  for (std::size_t i = 0; i < v1_lines.size(); ++i) {
    const auto v1 = parse_request_json(v1_lines[i]);
    ASSERT_TRUE(v1.ok()) << v1.error().message << " for " << v1_lines[i];
    const auto v2 = parse_request_json(v2_lines[i]);
    ASSERT_TRUE(v2.ok()) << v2.error().message << " for " << v2_lines[i];

    // Normalization: a parsed v1 request IS a v2 request — same serialized
    // bytes, same canonical key, same response bytes.
    EXPECT_EQ(v1.value().schema_version, kSchemaVersion);
    EXPECT_EQ(request_to_json(v1.value()), request_to_json(v2.value()));
    EXPECT_EQ(request_canonical_key(v1.value()),
              request_canonical_key(v2.value()));
    EXPECT_EQ(response_to_json(service->serve(v1.value())),
              response_to_json(service->serve(v2.value())));
  }
}

TEST(ApiV1Compat, UnsupportedVersionsQuoteTheSupportedRange) {
  const auto parsed =
      parse_request_json("{\"schema_version\":99,\"kind\":\"eval\"}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("1..4"), std::string::npos)
      << parsed.error().message;
}

TEST(ApiCapabilities, ReportsVersionsBoundsAndConfiguration) {
  const auto service = make_service();
  const auto outcome = service->capabilities({});
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  const auto& c = outcome.value();
  EXPECT_EQ(c.schema_versions, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(c.vth_min_v, 0.2);
  EXPECT_DOUBLE_EQ(c.vth_max_v, 0.5);
  EXPECT_DOUBLE_EQ(c.tox_min_a, 10.0);
  EXPECT_DOUBLE_EQ(c.tox_max_a, 14.0);
  EXPECT_EQ(c.grid_vth_v.size(), 7u);  // the paper grid
  EXPECT_EQ(c.grid_tox_a.size(), 5u);
  EXPECT_EQ(c.schemes, (std::vector<std::string>{"I", "II", "III"}));
  EXPECT_EQ(c.l1_size_bytes, 16u * 1024u);
  EXPECT_EQ(c.l2_size_bytes, 1024u * 1024u);
  EXPECT_GT(c.threads, 0);
  EXPECT_EQ(c.search_mode, "pruned");
  EXPECT_FALSE(c.fitted_models);
  EXPECT_FALSE(c.disk_cache);

  // serve() wraps it like any other kind, and the wire form round-trips.
  Request request;
  request.kind = RequestKind::kCapabilities;
  request.id = "caps";
  const auto response = service->serve(request);
  ASSERT_TRUE(response.ok) << response.error.message;
  const std::string bytes = response_to_json(response);
  const auto reparsed = parse_response_json(bytes);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(response_to_json(reparsed.value()), bytes);
}

TEST(ApiResponseParse, RoundTripsEverySuccessShape) {
  const auto service = make_service();
  auto workload = small_workload();
  {
    Request r;  // infeasible optimize: data, not error
    r.id = "squeezed";
    r.kind = RequestKind::kOptimize;
    r.optimize.delay.target_ps = 1.0;
    workload.push_back(std::move(r));
  }
  {
    Request r;  // one-target schemes sweep
    r.id = "sweep";
    r.kind = RequestKind::kSweep;
    r.sweep.kind = SweepKind::kSchemes;
    r.sweep.delay.targets_ps = {1500.0};
    workload.push_back(std::move(r));
  }
  {
    Request r;  // typed in-band error response
    r.id = "bad";
    r.kind = RequestKind::kOptimize;
    r.optimize.delay.target_ps = -1.0;
    workload.push_back(std::move(r));
  }
  for (const auto& request : workload) {
    const std::string bytes = response_to_json(service->serve(request));
    const auto parsed = parse_response_json(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message << " for " << bytes;
    EXPECT_EQ(response_to_json(parsed.value()), bytes);
  }
}

}  // namespace
}  // namespace nanocache::api
