// Integration tests for the paper's own optimization pipeline: Explorer
// experiments driven by the fitted closed forms (Eqs. 1-2) instead of the
// structural model.  The headline claims must survive the substitution.
#include <gtest/gtest.h>

#include "core/explorer.h"

namespace nanocache::core {
namespace {

Explorer& fitted_explorer() {
  static Explorer e = [] {
    ExperimentConfig cfg;
    cfg.use_fitted_models = true;
    return Explorer(cfg);
  }();
  return e;
}

TEST(FittedPath, SchemeOrderingHolds) {
  const auto ladder = fitted_explorer().delay_ladder(16 * 1024, 5);
  const auto rows = fitted_explorer().scheme_comparison(16 * 1024, ladder);
  int compared = 0;
  for (const auto& r : rows) {
    if (!(r.scheme1 && r.scheme2 && r.scheme3)) continue;
    EXPECT_LE(r.scheme1->leakage_w, r.scheme2->leakage_w * (1 + 1e-12));
    EXPECT_LE(r.scheme2->leakage_w, r.scheme3->leakage_w * (1 + 1e-12));
    ++compared;
  }
  EXPECT_GE(compared, 3);
}

TEST(FittedPath, L2SweepStillNonMonotone) {
  bool bigger_wins = false;
  bool largest_not_best = false;
  for (double headroom : {1.05, 1.15, 1.30}) {
    const auto rows = fitted_explorer().l2_size_sweep(
        opt::Scheme::kUniform,
        fitted_explorer().l2_squeeze_target_s(headroom));
    const SizeSweepRow* best = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].feasible) continue;
      if (i > 0 && rows[i - 1].feasible &&
          rows[i].level_leakage_w < rows[i - 1].level_leakage_w) {
        bigger_wins = true;
      }
      if (!best || rows[i].level_leakage_w < best->level_leakage_w) {
        best = &rows[i];
      }
    }
    if (best && best->size_bytes != rows.back().size_bytes) {
      largest_not_best = true;
    }
  }
  EXPECT_TRUE(bigger_wins);
  EXPECT_TRUE(largest_not_best);
}

TEST(FittedPath, L1SweepSmallestStillWins) {
  const auto rows = fitted_explorer().l1_size_sweep(
      fitted_explorer().l2_squeeze_target_s(1.25));
  const SizeSweepRow* best = nullptr;
  for (const auto& r : rows) {
    if (!r.feasible) continue;
    if (!best || r.total_leakage_w < best->total_leakage_w) best = &r;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->size_bytes, rows.front().size_bytes);
}

TEST(FittedPath, AgreesWithStructuralWithinModelError) {
  // Same experiment through both paths: optimal leakage within the fit's
  // error band at matched targets.
  Explorer structural;
  const auto ladder = structural.delay_ladder(16 * 1024, 5);
  const auto rs = structural.scheme_comparison(16 * 1024, ladder);
  const auto rf = fitted_explorer().scheme_comparison(16 * 1024, ladder);
  int compared = 0;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (!(rs[i].scheme2 && rf[i].scheme2)) continue;
    // Judge the fitted path's pick on the structural truth.  Its delay may
    // overshoot the target by the fit error; bound that error, and only
    // compare leakage when its pick is structurally feasible (otherwise it
    // optimized a different feasible set).
    const auto& m = structural.l1_model(16 * 1024);
    const auto truth_f = m.evaluate(rf[i].scheme2->assignment);
    EXPECT_LE(truth_f.access_time_s, rs[i].delay_target_s * 1.15) << i;
    if (truth_f.access_time_s <= rs[i].delay_target_s * (1 + 1e-9)) {
      const double leak_s = m.evaluate(rs[i].scheme2->assignment).leakage_w;
      EXPECT_LE(leak_s, truth_f.leakage_w * (1 + 1e-9)) << i;
      EXPECT_LE(truth_f.leakage_w, leak_s * 2.5) << i;
      ++compared;
    }
  }
  EXPECT_GE(compared, 2);
}

TEST(FittedPath, EvaluatorCachesFits) {
  // Two calls for the same model must not refit (same underlying object —
  // observable through identical outputs and, indirectly, fast runtime).
  const auto& m = fitted_explorer().l1_model(16 * 1024);
  const auto e1 = fitted_explorer().evaluator(m);
  const auto e2 = fitted_explorer().evaluator(m);
  const tech::DeviceKnobs k{0.31, 11.7};
  EXPECT_DOUBLE_EQ(
      e1(cachemodel::ComponentKind::kCellArray, k).leakage_w,
      e2(cachemodel::ComponentKind::kCellArray, k).leakage_w);
}

}  // namespace
}  // namespace nanocache::core
