// Correctness tests for the set-associative cache and two-level hierarchy:
// directed traces with known hit/miss outcomes, replacement-policy
// semantics, writeback accounting and parameter validation.
#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/hierarchy.h"
#include "sim/trace.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

TEST(Cache, ColdMissThenHit) {
  SetAssociativeCache c(1024, 32, 2);
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11f, false).hit);   // same 32B block
  EXPECT_FALSE(c.access(0x120, false).hit);  // next block
}

TEST(Cache, StatsCount) {
  SetAssociativeCache c(1024, 32, 2);
  c.access(0, false);
  c.access(0, false);
  c.access(32, false);
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_NEAR(c.stats().miss_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, DirectMappedConflicts) {
  // 1 KB direct-mapped, 32 B blocks: 32 sets; addresses 0 and 1024 collide.
  SetAssociativeCache c(1024, 32, 1);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);
  EXPECT_FALSE(c.access(0, false).hit);  // evicted by 1024
}

TEST(Cache, TwoWayAvoidsPairConflict) {
  SetAssociativeCache c(1024, 32, 2);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);  // both fit in the 2-way set
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 2-way set: touch A, B, re-touch A, then C evicts B (not A).
  SetAssociativeCache c(1024, 32, 2, Replacement::kLru);
  const std::uint64_t A = 0, B = 512, C = 1024;  // same set (32 sets? no:
  // 1024/(32*2)=16 sets; stride 512 = 16 blocks -> same set index 0)
  c.access(A, false);
  c.access(B, false);
  c.access(A, false);
  c.access(C, false);  // evicts B under LRU
  EXPECT_TRUE(c.contains(A));
  EXPECT_FALSE(c.contains(B));
  EXPECT_TRUE(c.contains(C));
}

TEST(Cache, FifoIgnoresReuse) {
  // Same trace as above: FIFO evicts A (oldest insertion) despite reuse.
  SetAssociativeCache c(1024, 32, 2, Replacement::kFifo);
  const std::uint64_t A = 0, B = 512, C = 1024;
  c.access(A, false);
  c.access(B, false);
  c.access(A, false);
  c.access(C, false);
  EXPECT_FALSE(c.contains(A));
  EXPECT_TRUE(c.contains(B));
  EXPECT_TRUE(c.contains(C));
}

TEST(Cache, PlruProtectsRecentlyReferenced) {
  SetAssociativeCache c(1024, 32, 4, Replacement::kPlru);
  // Fill a set (stride = 1024/(32*4) * 32 = 256 bytes per set wrap).
  const std::uint64_t stride = 256;
  for (int i = 0; i < 4; ++i) c.access(i * stride, false);
  c.access(0, false);            // reference way A
  c.access(4 * stride, false);   // eviction must not pick block 0
  EXPECT_TRUE(c.contains(0));
}

TEST(Cache, RandomReplacementStillCorrectOnHits) {
  SetAssociativeCache c(1024, 32, 2, Replacement::kRandom, 1234);
  c.access(64, true);
  EXPECT_TRUE(c.access(64, false).hit);
}

TEST(Cache, WritebackOnDirtyEviction) {
  SetAssociativeCache c(1024, 32, 1);
  c.access(0, true);                       // dirty
  const auto r = c.access(1024, false);    // evicts dirty block 0
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_block, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, NoWritebackOnCleanEviction) {
  SetAssociativeCache c(1024, 32, 1);
  c.access(0, false);
  const auto r = c.access(1024, false);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksDirty) {
  SetAssociativeCache c(1024, 32, 1);
  c.access(0, false);  // clean fill
  c.access(0, true);   // write hit -> dirty
  const auto r = c.access(1024, false);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, InvalidateRemovesBlockAndReportsDirty) {
  SetAssociativeCache c(1024, 32, 2);
  c.access(0, true);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.invalidate_block(0));  // dirty
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.invalidate_block(0));  // already gone
}

TEST(Cache, ResetStatsKeepsContents) {
  SetAssociativeCache c(1024, 32, 2);
  c.access(0, false);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.access(0, false).hit);  // still resident
}

TEST(Cache, GeometryAccessors) {
  SetAssociativeCache c(8192, 64, 4);
  EXPECT_EQ(c.size_bytes(), 8192u);
  EXPECT_EQ(c.block_bytes(), 64u);
  EXPECT_EQ(c.associativity(), 4u);
  EXPECT_EQ(c.num_sets(), 32u);
}

TEST(Cache, ValidatesParameters) {
  EXPECT_THROW(SetAssociativeCache(1000, 32, 2), Error);   // size not pow2
  EXPECT_THROW(SetAssociativeCache(1024, 48, 2), Error);   // block not pow2
  EXPECT_THROW(SetAssociativeCache(1024, 32, 3), Error);   // assoc not pow2
  EXPECT_THROW(SetAssociativeCache(64, 64, 2), Error);     // smaller than set
}

TEST(Cache, FullyAssociativeWorks) {
  SetAssociativeCache c(256, 32, 8);  // one set, 8 ways
  EXPECT_EQ(c.num_sets(), 1u);
  for (int i = 0; i < 8; ++i) c.access(i * 32, false);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(c.contains(i * 32)) << i;
  c.access(8 * 32, false);  // one eviction
  int resident = 0;
  for (int i = 0; i <= 8; ++i) {
    if (c.contains(i * 32)) ++resident;
  }
  EXPECT_EQ(resident, 8);
}

TEST(ReplacementName, AllNamed) {
  EXPECT_EQ(replacement_name(Replacement::kLru), "LRU");
  EXPECT_EQ(replacement_name(Replacement::kFifo), "FIFO");
  EXPECT_EQ(replacement_name(Replacement::kRandom), "random");
  EXPECT_EQ(replacement_name(Replacement::kPlru), "PLRU");
}

// --- property: LRU hit rate never below random's on a looping trace --------

TEST(CacheProperty, LruBeatsRandomOnLoopingTrace) {
  std::vector<Access> loop;
  for (int rep = 0; rep < 200; ++rep) {
    for (int i = 0; i < 48; ++i) {
      loop.push_back({static_cast<std::uint64_t>(i) * 32, false});
    }
  }
  SetAssociativeCache lru(1024, 32, 4, Replacement::kLru);
  SetAssociativeCache rnd(1024, 32, 4, Replacement::kRandom, 99);
  for (const auto& a : loop) {
    lru.access(a.address, a.is_write);
    rnd.access(a.address, a.is_write);
  }
  // A 48-block loop through a 32-block cache thrashes LRU completely;
  // random keeps some blocks.  This is the classic LRU pathology, so here
  // random must win — the test pins the *semantics*, not a preference.
  EXPECT_GE(lru.stats().misses, rnd.stats().misses);
}

// --- hierarchy ---------------------------------------------------------------

TEST(Hierarchy, InclusionOnFirstTouch) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 2),
                      SetAssociativeCache(16 * 1024, 64, 8));
  h.access(0x1000, false);
  EXPECT_EQ(h.stats().references, 1u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
  EXPECT_EQ(h.stats().l2_misses, 1u);
  EXPECT_EQ(h.stats().memory_accesses, 1u);
  EXPECT_TRUE(h.l1().contains(0x1000));
  EXPECT_TRUE(h.l2().contains(0x1000));
}

TEST(Hierarchy, L1HitTouchesNothingBelow) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 2),
                      SetAssociativeCache(16 * 1024, 64, 8));
  h.access(0x1000, false);
  const auto before = h.stats().l2_accesses;
  h.access(0x1000, false);
  EXPECT_EQ(h.stats().l2_accesses, before);
  EXPECT_EQ(h.stats().l1_misses, 1u);
}

TEST(Hierarchy, L1MissL2Hit) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 1),
                      SetAssociativeCache(16 * 1024, 64, 8));
  h.access(0, false);
  h.access(1024, false);  // evicts 0 from L1; both now in L2
  h.access(0, false);     // L1 miss, L2 hit
  EXPECT_EQ(h.stats().l1_misses, 3u);
  EXPECT_EQ(h.stats().l2_misses, 2u);
}

TEST(Hierarchy, DirtyL1VictimWritesIntoL2) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 1),
                      SetAssociativeCache(16 * 1024, 64, 8));
  h.access(0, true);      // dirty in L1
  h.access(1024, false);  // evicts dirty 0 -> write to L2
  EXPECT_EQ(h.stats().l1_writebacks, 1u);
  EXPECT_GE(h.stats().l2_accesses, 2u);
}

TEST(Hierarchy, LocalMissRatesComputed) {
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 2),
                      SetAssociativeCache(16 * 1024, 64, 8));
  for (int i = 0; i < 100; ++i) {
    h.access(static_cast<std::uint64_t>(i) * 4096, false);
  }
  EXPECT_NEAR(h.stats().l1_miss_rate(), 1.0, 1e-12);
  EXPECT_NEAR(h.stats().l2_local_miss_rate(), 1.0, 1e-12);
  EXPECT_NEAR(h.stats().l2_global_miss_rate(), 1.0, 1e-12);
}

TEST(Hierarchy, WarmupExcludedFromStats) {
  VectorTrace t({{0, false}, {32, false}, {64, false}, {96, false}});
  TwoLevelHierarchy h(SetAssociativeCache(1024, 32, 2),
                      SetAssociativeCache(16 * 1024, 64, 8));
  h.warmup(t, 4);
  EXPECT_EQ(h.stats().references, 0u);
  h.run(t, 4);
  EXPECT_EQ(h.stats().references, 4u);
  EXPECT_EQ(h.stats().l1_misses, 0u);  // everything warmed up
}

TEST(Hierarchy, RejectsIncompatibleBlocks) {
  EXPECT_THROW(TwoLevelHierarchy(SetAssociativeCache(1024, 64, 2),
                                 SetAssociativeCache(16 * 1024, 32, 8)),
               Error);
  EXPECT_THROW(TwoLevelHierarchy(SetAssociativeCache(32 * 1024, 32, 2),
                                 SetAssociativeCache(16 * 1024, 64, 8)),
               Error);
}

TEST(Hierarchy, EmptyStatsAreZeroRates) {
  HierarchyStats s;
  EXPECT_DOUBLE_EQ(s.l1_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.l2_local_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.l2_global_miss_rate(), 0.0);
}

// --- property: larger caches never miss more on a deterministic trace ------

class CacheSizeMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CacheSizeMonotonicity, MissesNonIncreasingWithSize) {
  // Deterministic looping trace with footprint chosen by the parameter.
  const int blocks = 32 << GetParam();
  std::vector<Access> trace;
  for (int rep = 0; rep < 50; ++rep) {
    for (int b = 0; b < blocks; ++b) {
      trace.push_back({static_cast<std::uint64_t>(b) * 32, false});
    }
  }
  std::uint64_t prev_misses = ~0ull;
  for (std::uint64_t size = 1024; size <= 64 * 1024; size *= 2) {
    // LRU has the stack property on looping traces; FIFO would be exposed
    // to Belady's anomaly.
    SetAssociativeCache c(size, 32, 2, Replacement::kLru);
    for (const auto& a : trace) c.access(a.address, a.is_write);
    EXPECT_LE(c.stats().misses, prev_misses) << "size=" << size;
    prev_misses = c.stats().misses;
  }
}

INSTANTIATE_TEST_SUITE_P(Footprints, CacheSizeMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace nanocache::sim
