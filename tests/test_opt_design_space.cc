// Differential tests for the enlarged v3 design space: the dominance-pruned
// engine must stay byte-identical to the exhaustive reference across the
// associativity x banks x node grid, with and without power gating, at every
// thread count.  This extends the fixed-organization suite in
// test_opt_pruned.cc to the axes the v3 API exposes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cachemodel/cache_model.h"
#include "cachemodel/organization.h"
#include "opt/pruned.h"
#include "opt/schemes.h"
#include "tech/params.h"
#include "util/parallel.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;

/// One sampled point of the enlarged space.  The full cross product is
/// 5 assoc x 4 banks x 5 nodes x 3 schemes x ladder; sampling keeps the
/// suite fast while still covering every axis value at least once.
struct SpacePoint {
  int node_nm;
  int associativity;  // -1 = fully associative
  std::uint32_t banks;
};

const std::vector<SpacePoint>& sampled_points() {
  static const std::vector<SpacePoint> points = {
      {65, 1, 1}, {65, 4, 2}, {90, 2, 1}, {45, 8, 4},
      {32, 2, 8}, {22, 4, 1}, {65, -1, 1},
  };
  return points;
}

/// Per-node grid, mirroring what api::Service builds for node explorers:
/// the paper's Vth ladder crossed with the node's own oxide window.
KnobGrid node_grid(const tech::TechnologyParams& params) {
  KnobGrid grid = KnobGrid::paper_default();
  grid.tox_values = tech::node_tox_grid(params);
  return grid;
}

std::unique_ptr<CacheModel> build_cache(const SpacePoint& p) {
  const auto params = tech::node_params(p.node_nm);
  tech::DeviceModel dev(params);
  return std::make_unique<CacheModel>(
      cachemodel::extended_organization(16 * 1024, false, p.associativity,
                                        p.banks, dev),
      tech::DeviceModel(params));
}

/// Targets spanning infeasible through unconstrained, anchored to the
/// point's own feasibility bound so every node/organization gets both
/// regimes.
std::vector<double> targets_around(const ComponentEvaluator& eval,
                                   const KnobGrid& grid, Scheme scheme,
                                   const OptSpace& space) {
  const double floor_s = min_access_time(eval, grid, scheme, space);
  return {0.8 * floor_s, 1.05 * floor_s, 1.3 * floor_s, 2.0 * floor_s};
}

void expect_identical(const OptOutcome<SchemeResult>& pruned,
                      const OptOutcome<SchemeResult>& exhaustive,
                      const std::string& context) {
  ASSERT_EQ(pruned.has_value(), exhaustive.has_value()) << context;
  if (!pruned.has_value()) {
    EXPECT_EQ(pruned.why().describe(), exhaustive.why().describe()) << context;
    return;
  }
  // Bitwise equality (EXPECT_EQ, not NEAR): same argmin, same tie-breaks,
  // same floating-point association.
  EXPECT_EQ(pruned->leakage_w, exhaustive->leakage_w) << context;
  EXPECT_EQ(pruned->access_time_s, exhaustive->access_time_s) << context;
  EXPECT_EQ(pruned->dynamic_energy_j, exhaustive->dynamic_energy_j) << context;
  EXPECT_TRUE(pruned->assignment == exhaustive->assignment) << context;
}

void run_differential(const ComponentEvaluator& eval, const KnobGrid& grid,
                      const OptSpace& space, const std::string& label) {
  for (const Scheme scheme :
       {Scheme::kPerComponent, Scheme::kArrayPeriphery, Scheme::kUniform}) {
    for (const double target : targets_around(eval, grid, scheme, space)) {
      const auto pruned = optimize_single_cache(eval, grid, scheme, target,
                                                SearchMode::kPruned, space);
      const auto exhaustive = optimize_single_cache(
          eval, grid, scheme, target, SearchMode::kExhaustive, space);
      expect_identical(pruned, exhaustive,
                       label + " scheme=" + scheme_name(scheme) +
                           " target=" + std::to_string(target));
    }
  }
}

std::string point_label(const SpacePoint& p) {
  return "node=" + std::to_string(p.node_nm) +
         " assoc=" + std::to_string(p.associativity) +
         " banks=" + std::to_string(p.banks);
}

TEST(DesignSpaceSearch, PrunedMatchesExhaustiveAcrossTheSampledGrid) {
  for (const auto& p : sampled_points()) {
    const auto cache = build_cache(p);
    run_differential(structural_evaluator(*cache),
                     node_grid(tech::node_params(p.node_nm)),
                     OptSpace::extended(), point_label(p));
  }
}

TEST(DesignSpaceSearch, PrunedMatchesExhaustiveWithPowerGating) {
  // Gating doubles every option table; the dominance argument must still
  // hold.  Covered on the base space (gating with the fixed organization
  // routes through the generalized engine) and on an extended point.
  OptSpace gated_base = OptSpace::base();
  gated_base.gating.enabled = true;
  tech::DeviceModel dev(tech::bptm65());
  const CacheModel fixed(cachemodel::l1_organization(16 * 1024, dev),
                         tech::DeviceModel(dev.params()));
  run_differential(structural_evaluator(fixed), KnobGrid::paper_default(),
                   gated_base, "gated/base");

  OptSpace gated_ext = OptSpace::extended();
  gated_ext.gating.enabled = true;
  const SpacePoint p{45, 4, 2};
  const auto cache = build_cache(p);
  run_differential(structural_evaluator(*cache),
                   node_grid(tech::node_params(p.node_nm)), gated_ext,
                   "gated/" + point_label(p));
}

TEST(DesignSpaceSearch, PrunedMatchesExhaustiveAtEveryThreadCount) {
  const SpacePoint p{32, 4, 2};
  const auto cache = build_cache(p);
  const auto eval = structural_evaluator(*cache);
  const auto grid = node_grid(tech::node_params(p.node_nm));
  const int before = par::default_threads();
  for (const int threads : {1, 8}) {
    par::set_default_threads(threads);
    run_differential(eval, grid, OptSpace::extended(),
                     "threads=" + std::to_string(threads));
  }
  par::set_default_threads(before);
}

TEST(DesignSpaceSearch, GatingNeverIncreasesOptimalLeakage) {
  // With the budget already folded into the constraint, enabling gating
  // only adds options; the optimum can only improve or stay put.
  tech::DeviceModel dev(tech::bptm65());
  const CacheModel fixed(cachemodel::l1_organization(16 * 1024, dev),
                         tech::DeviceModel(dev.params()));
  const auto eval = structural_evaluator(fixed);
  const auto grid = KnobGrid::paper_default();
  OptSpace gated = OptSpace::base();
  gated.gating.enabled = true;
  for (const Scheme scheme :
       {Scheme::kPerComponent, Scheme::kArrayPeriphery, Scheme::kUniform}) {
    for (const double target : targets_around(eval, grid, scheme,
                                              OptSpace::base())) {
      const auto plain = optimize_single_cache(eval, grid, scheme, target,
                                               SearchMode::kPruned);
      const auto with_sleep = optimize_single_cache(
          eval, grid, scheme, target, SearchMode::kPruned, gated);
      if (!plain.has_value()) continue;
      ASSERT_TRUE(with_sleep.has_value());
      EXPECT_LE(with_sleep->leakage_w, plain->leakage_w)
          << scheme_name(scheme) << " target=" << target;
    }
  }
}

}  // namespace
}  // namespace nanocache::opt
