// Tests for the simulated-annealing optimizer (against the exact DP) and
// the Monte-Carlo variation analysis.
#include <gtest/gtest.h>

#include <memory>

#include "cachemodel/variation.h"
#include "opt/anneal.h"
#include "util/error.h"

namespace nanocache {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentAssignment;
using opt::Scheme;

const CacheModel& cache16k() {
  static auto model = [] {
    tech::DeviceModel dev(tech::bptm65());
    return std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
  }();
  return *model;
}

// --- annealing ---------------------------------------------------------------

TEST(Anneal, FeasibleAndConstraintRespected) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  const double lo =
      opt::min_access_time(eval, grid, Scheme::kArrayPeriphery);
  const auto r = opt::anneal_single_cache(eval, grid,
                                          Scheme::kArrayPeriphery, lo * 1.3);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->access_time_s, lo * 1.3 * (1 + 1e-12));
}

TEST(Anneal, CloseToExactOptimum) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  for (Scheme s : {Scheme::kPerComponent, Scheme::kArrayPeriphery,
                   Scheme::kUniform}) {
    const double lo = opt::min_access_time(eval, grid, s);
    for (double factor : {1.2, 1.6}) {
      const auto exact =
          opt::optimize_single_cache(eval, grid, s, lo * factor);
      const auto sa = opt::anneal_single_cache(eval, grid, s, lo * factor);
      ASSERT_TRUE(exact && sa) << factor;
      // Annealing is a heuristic; require it lands within 10% of exact on
      // these small instances (it usually hits it exactly).
      EXPECT_LE(sa->leakage_w, exact->leakage_w * 1.10)
          << opt::scheme_name(s) << " @" << factor;
      // And it can never beat the exact optimizer.
      EXPECT_GE(sa->leakage_w, exact->leakage_w * (1 - 1e-9));
    }
  }
}

TEST(Anneal, DeterministicForSeed) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  const double lo = opt::min_access_time(eval, grid, Scheme::kPerComponent);
  opt::AnnealConfig cfg;
  cfg.iterations = 3000;
  const auto a = opt::anneal_single_cache(eval, grid, Scheme::kPerComponent,
                                          lo * 1.3, cfg);
  const auto b = opt::anneal_single_cache(eval, grid, Scheme::kPerComponent,
                                          lo * 1.3, cfg);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->leakage_w, b->leakage_w);
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(Anneal, InfeasibleTargetReturnsNullopt) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  const double lo = opt::min_access_time(eval, grid, Scheme::kUniform);
  EXPECT_FALSE(opt::anneal_single_cache(eval, grid, Scheme::kUniform,
                                        lo * 0.5)
                   .has_value());
}

TEST(Anneal, ValidatesConfig) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  opt::AnnealConfig cfg;
  cfg.iterations = 10;
  EXPECT_THROW(opt::anneal_single_cache(eval, grid, Scheme::kUniform, 1e-9,
                                        cfg),
               Error);
  EXPECT_THROW(opt::anneal_single_cache(eval, grid, Scheme::kUniform, -1.0),
               Error);
}

TEST(Anneal, RespectsSchemeSharing) {
  const auto eval = opt::structural_evaluator(cache16k());
  const auto grid = opt::KnobGrid::paper_default();
  const double lo = opt::min_access_time(eval, grid, Scheme::kUniform);
  const auto r =
      opt::anneal_single_cache(eval, grid, Scheme::kUniform, lo * 1.4);
  ASSERT_TRUE(r.has_value());
  const auto& first = r->assignment.get(cachemodel::ComponentKind::kCellArray);
  for (auto kind : cachemodel::kAllComponents) {
    EXPECT_EQ(r->assignment.get(kind), first);
  }
}

// --- variation ---------------------------------------------------------------

TEST(Variation, DeterministicForSeed) {
  const ComponentAssignment a(tech::DeviceKnobs{0.35, 12.0});
  cachemodel::VariationParams p;
  p.samples = 100;
  const auto r1 = cachemodel::monte_carlo(cache16k(), a, p, 0.0, 7);
  const auto r2 = cachemodel::monte_carlo(cache16k(), a, p, 0.0, 7);
  EXPECT_DOUBLE_EQ(r1.leakage_w.mean, r2.leakage_w.mean);
  EXPECT_DOUBLE_EQ(r1.leakage_w.p95, r2.leakage_w.p95);
}

TEST(Variation, ZeroSigmaDegeneratesToNominal) {
  const ComponentAssignment a(tech::DeviceKnobs{0.35, 12.0});
  cachemodel::VariationParams p;
  p.vth_sigma_v = 0.0;
  p.tox_sigma_a = 0.0;
  p.samples = 10;
  const auto r = cachemodel::monte_carlo(cache16k(), a, p);
  const auto nominal = cache16k().evaluate(a);
  EXPECT_NEAR(r.leakage_w.mean, nominal.leakage_w,
              nominal.leakage_w * 1e-12);
  EXPECT_NEAR(r.leakage_w.stddev, 0.0, nominal.leakage_w * 1e-12);
  EXPECT_DOUBLE_EQ(r.timing_yield, 1.0);
}

TEST(Variation, LeakageSkewsAboveNominal) {
  // exp() of a Gaussian has mean above the nominal (Jensen).
  const ComponentAssignment a(tech::DeviceKnobs{0.40, 13.0});
  cachemodel::VariationParams p;
  p.samples = 1500;
  const auto r = cachemodel::monte_carlo(cache16k(), a, p);
  const auto nominal = cache16k().evaluate(a);
  EXPECT_GT(r.leakage_w.mean, nominal.leakage_w);
  EXPECT_GT(r.leakage_w.p95, r.leakage_w.mean);
  EXPECT_LE(r.leakage_w.min, r.leakage_w.mean);
  EXPECT_GE(r.leakage_w.max, r.leakage_w.p95);
}

TEST(Variation, YieldMonotoneInConstraint) {
  const ComponentAssignment a(tech::DeviceKnobs{0.35, 12.0});
  const auto nominal = cache16k().evaluate(a);
  cachemodel::VariationParams p;
  p.samples = 400;
  const auto tight = cachemodel::monte_carlo(
      cache16k(), a, p, nominal.access_time_s * 0.97);
  const auto exact = cachemodel::monte_carlo(cache16k(), a, p,
                                             nominal.access_time_s);
  const auto loose = cachemodel::monte_carlo(
      cache16k(), a, p, nominal.access_time_s * 1.10);
  EXPECT_LE(tight.timing_yield, exact.timing_yield);
  EXPECT_LE(exact.timing_yield, loose.timing_yield);
  EXPECT_GT(loose.timing_yield, 0.9);
  EXPECT_LT(tight.timing_yield, 0.5);
}

TEST(Variation, Validates) {
  const ComponentAssignment a(tech::DeviceKnobs{0.35, 12.0});
  cachemodel::VariationParams p;
  p.samples = 1;
  EXPECT_THROW(cachemodel::monte_carlo(cache16k(), a, p), Error);
  p.samples = 10;
  p.vth_sigma_v = -1.0;
  EXPECT_THROW(cachemodel::monte_carlo(cache16k(), a, p), Error);
}

}  // namespace
}  // namespace nanocache
