// End-to-end integration tests: each paper claim, asserted through the
// same Explorer paths the bench harness prints.  These are the repository's
// reproduction contract — if one of these fails, a bench's REPRODUCED line
// would flip.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/explorer.h"

namespace nanocache::core {
namespace {

Explorer& explorer() {
  static Explorer e;
  return e;
}

// --- FIG1 claims (Section 4) ------------------------------------------------

TEST(Fig1, VthIsTheWiderDelayKnob) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 9);
  const auto& tox_fixed = series[0];  // Vth swept
  const auto& vth_fixed = series[2];  // Tox swept
  const double vth_span = tox_fixed.points.back().access_time_s /
                          tox_fixed.points.front().access_time_s;
  const double tox_span = vth_fixed.points.back().access_time_s /
                          vth_fixed.points.front().access_time_s;
  EXPECT_GT(vth_span, tox_span);
}

TEST(Fig1, ToxIsTheBiggerLeakageLever) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 9);
  // At the conservative end of the other knob, compare the leverage.
  const double tox_gap =
      series[0].points.back().leakage_w / series[1].points.back().leakage_w;
  const double vth_gap =
      series[0].points.front().leakage_w / series[0].points.back().leakage_w;
  EXPECT_GT(tox_gap, vth_gap);
}

TEST(Fig1, LeakageFallsMonotonicallyAlongEachCurve) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 9);
  for (const auto& s : series) {
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_LT(s.points[i].leakage_w, s.points[i - 1].leakage_w)
          << s.label << " @" << i;
      EXPECT_GT(s.points[i].access_time_s, s.points[i - 1].access_time_s)
          << s.label << " @" << i;
    }
  }
}

TEST(Fig1, AccessTimeWindowMatchesPaperAxis) {
  // Paper Figure 1 x-axis: ~800-2200 pS for the 16 KB design.
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 9);
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      lo = std::min(lo, p.access_time_s);
      hi = std::max(hi, p.access_time_s);
    }
  }
  EXPECT_GT(lo, 0.6e-9);
  EXPECT_LT(lo, 1.1e-9);
  EXPECT_GT(hi, 1.8e-9);
  EXPECT_LT(hi, 2.6e-9);
}

TEST(Fig1, GateLeakageFloorVisibleOnThinToxCurve) {
  // The Tox=10A curve must flatten: raising Vth stops helping once gate
  // tunnelling dominates — the paper's motivation for total leakage.
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 9);
  const auto& thin = series[0].points;
  const double first_drop = thin[0].leakage_w - thin[1].leakage_w;
  const double last_drop =
      thin[thin.size() - 2].leakage_w - thin.back().leakage_w;
  EXPECT_GT(first_drop, last_drop * 5.0);
}

// --- Section 4 scheme claims -------------------------------------------------

TEST(SchemeStudy, FullLadderOrdering) {
  const auto ladder = explorer().delay_ladder(16 * 1024, 7);
  const auto rows = explorer().scheme_comparison(16 * 1024, ladder);
  for (const auto& r : rows) {
    if (!(r.scheme1 && r.scheme2 && r.scheme3)) continue;
    EXPECT_LE(r.scheme1->leakage_w, r.scheme2->leakage_w * (1 + 1e-12));
    EXPECT_LE(r.scheme2->leakage_w, r.scheme3->leakage_w * (1 + 1e-12));
  }
}

TEST(SchemeStudy, SchemeIICloseToSchemeIOnAverage) {
  const auto ladder = explorer().delay_ladder(16 * 1024, 7);
  const auto rows = explorer().scheme_comparison(16 * 1024, ladder);
  double ratio_sum = 0.0;
  int n = 0;
  for (const auto& r : rows) {
    if (!(r.scheme1 && r.scheme2)) continue;
    ratio_sum += r.scheme2->leakage_w / r.scheme1->leakage_w;
    ++n;
  }
  ASSERT_GT(n, 3);
  EXPECT_LT(ratio_sum / n, 1.15);  // "only slightly behind"
}

// --- Section 5 L2 claims -----------------------------------------------------

TEST(L2Study, BiggerL2WinsSomewhereAndLargestDoesNot) {
  bool bigger_wins = false;
  bool largest_not_best = false;
  for (double headroom : {1.05, 1.15, 1.30}) {
    const auto rows = explorer().l2_size_sweep(
        opt::Scheme::kUniform, explorer().l2_squeeze_target_s(headroom));
    const SizeSweepRow* best = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].feasible) continue;
      if (i > 0 && rows[i - 1].feasible &&
          rows[i].level_leakage_w < rows[i - 1].level_leakage_w) {
        bigger_wins = true;
      }
      if (!best || rows[i].level_leakage_w < best->level_leakage_w) {
        best = &rows[i];
      }
    }
    if (best && best->size_bytes != rows.back().size_bytes) {
      largest_not_best = true;
    }
  }
  EXPECT_TRUE(bigger_wins);
  EXPECT_TRUE(largest_not_best);
}

TEST(L2Study, SplitNeverWorseThanOnePair) {
  const double target = explorer().l2_squeeze_target_s(1.15);
  const auto one = explorer().l2_size_sweep(opt::Scheme::kUniform, target);
  const auto split =
      explorer().l2_size_sweep(opt::Scheme::kArrayPeriphery, target);
  for (std::size_t i = 0; i < one.size(); ++i) {
    if (!one[i].feasible) continue;
    ASSERT_TRUE(split[i].feasible) << i;
    EXPECT_LE(split[i].level_leakage_w,
              one[i].level_leakage_w * (1 + 1e-12))
        << i;
  }
}

TEST(L2Study, SplitMovesOptimumToSmallerL2) {
  // The abstract's claim.  Checked across the squeeze window: at some
  // target the split optimum is a strictly smaller L2 with less leakage.
  bool moved = false;
  for (double headroom : {1.05, 1.15, 1.30}) {
    const double target = explorer().l2_squeeze_target_s(headroom);
    const auto one = explorer().l2_size_sweep(opt::Scheme::kUniform, target);
    const auto split =
        explorer().l2_size_sweep(opt::Scheme::kArrayPeriphery, target);
    const SizeSweepRow* b1 = nullptr;
    const SizeSweepRow* b2 = nullptr;
    for (const auto& r : one) {
      if (r.feasible && (!b1 || r.level_leakage_w < b1->level_leakage_w)) {
        b1 = &r;
      }
    }
    for (const auto& r : split) {
      if (r.feasible && (!b2 || r.level_leakage_w < b2->level_leakage_w)) {
        b2 = &r;
      }
    }
    if (b1 && b2 && b2->size_bytes < b1->size_bytes &&
        b2->level_leakage_w < b1->level_leakage_w) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(L2Study, SplitAlwaysSetsArrayConservative) {
  const double target = explorer().l2_squeeze_target_s(1.15);
  const auto split =
      explorer().l2_size_sweep(opt::Scheme::kArrayPeriphery, target);
  for (const auto& r : split) {
    if (!r.feasible) continue;
    const auto& arr =
        r.result.assignment.get(cachemodel::ComponentKind::kCellArray);
    const auto& per =
        r.result.assignment.get(cachemodel::ComponentKind::kDecoder);
    EXPECT_GE(arr.vth_v, per.vth_v) << r.size_bytes;
    EXPECT_GE(arr.tox_a, per.tox_a) << r.size_bytes;
  }
}

// --- Section 5 L1 claim ------------------------------------------------------

TEST(L1Study, SmallestL1MinimizesTotalLeakage) {
  const auto rows =
      explorer().l1_size_sweep(explorer().l2_squeeze_target_s(1.25));
  const SizeSweepRow* best = nullptr;
  for (const auto& r : rows) {
    if (!r.feasible) continue;
    if (!best || r.total_leakage_w < best->total_leakage_w) best = &r;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->size_bytes, rows.front().size_bytes);
}

TEST(L1Study, TotalLeakageMonotoneInL1Size) {
  const auto rows =
      explorer().l1_size_sweep(explorer().l2_squeeze_target_s(1.25));
  double prev = 0.0;
  for (const auto& r : rows) {
    if (!r.feasible) continue;
    EXPECT_GE(r.total_leakage_w, prev * 0.999) << r.size_bytes;
    prev = r.total_leakage_w;
  }
}

// --- Figure 2 claims ---------------------------------------------------------

class Fig2Claims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto specs = Explorer::default_fig2_specs();
    std::vector<double> targets;
    for (double ps = 1500; ps <= 2100; ps += 300) {
      targets.push_back(ps * 1e-12);
    }
    table_ = new auto(explorer().fig2_tuple_table(specs, targets));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static double energy(std::size_t spec, std::size_t target) {
    const auto& cell = (*table_)[spec][target];
    return cell ? cell->energy_j : 1e9;
  }
  static std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>*
      table_;
};

std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>*
    Fig2Claims::table_ = nullptr;

TEST_F(Fig2Claims, TwoToxThreeVthIsEssentiallyBest) {
  // spec order: {2,2}, {2,3}, {3,2}, {2,1}, {1,2}; loosest target index 2.
  const double e23 = energy(1, 2);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_LE(e23, energy(s, 2) * 1.01) << s;
  }
}

TEST_F(Fig2Claims, DualDualIsSufficient) {
  // "A process with dual Tox and dual Vth is sufficient": within a few
  // percent of the best menu at every evaluated target.
  for (std::size_t t = 0; t < 3; ++t) {
    double best = 1e9;
    for (std::size_t s = 0; s < 5; ++s) best = std::min(best, energy(s, t));
    EXPECT_LE(energy(0, t), best * 1.06) << t;
  }
}

TEST_F(Fig2Claims, SingleToxDualVthBeatsDualToxSingleVth) {
  // "Vth is generally a more effective design knob than Tox" — holds over
  // the paper's plotted range (looser targets); the tightest corner is a
  // documented deviation.
  EXPECT_LT(energy(4, 2), energy(3, 2));
  EXPECT_LT(energy(4, 1), energy(3, 1));
}

TEST_F(Fig2Claims, RestrictedMenusCostMoreThanRicherOnes) {
  for (std::size_t t = 0; t < 3; ++t) {
    // {2,1} and {1,2} are both subsets of {2,2}'s menu space.
    EXPECT_LE(energy(0, t), energy(3, t) * 1.001) << t;
    EXPECT_LE(energy(0, t), energy(4, t) * 1.001) << t;
  }
}

TEST_F(Fig2Claims, EnergyWindowMatchesPaperAxis) {
  // Paper Figure 2 y-axis: 50-400 pJ.  Require the same order of
  // magnitude at the evaluated targets for the feasible menus.
  for (std::size_t t = 0; t < 3; ++t) {
    const double e = energy(0, t);
    EXPECT_GT(e, 30e-12) << t;
    EXPECT_LT(e, 700e-12) << t;
  }
}

}  // namespace
}  // namespace nanocache::core
