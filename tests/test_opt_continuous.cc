// Tests for the continuous (Lagrangian / NLP-style) optimizer over the
// fitted closed forms: feasibility, constraint satisfaction, agreement
// with the fine discrete grid, and the scheme ordering.
#include <gtest/gtest.h>

#include <memory>

#include "opt/continuous.h"
#include "util/error.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentKind;
using cachemodel::FittedCacheModel;

struct Fixture {
  Fixture() {
    tech::DeviceModel dev(tech::bptm65());
    model = std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
    fits = std::make_unique<FittedCacheModel>(FittedCacheModel::fit(*model));
  }
  std::unique_ptr<CacheModel> model;
  std::unique_ptr<FittedCacheModel> fits;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

tech::KnobRange range() { return tech::bptm65().knobs; }

double fastest_fitted(Scheme scheme) {
  const cachemodel::ComponentAssignment fast(
      tech::DeviceKnobs{range().vth_min_v, range().tox_min_a});
  (void)scheme;  // the fastest corner is scheme-independent
  return fixture().fits->access_time_s(fast);
}

TEST(Continuous, InfeasibleBelowFastestCorner) {
  const double lo = fastest_fitted(Scheme::kPerComponent);
  EXPECT_FALSE(optimize_continuous(*fixture().fits, range(),
                                   Scheme::kPerComponent, lo * 0.8)
                   .has_value());
  EXPECT_THROW(optimize_continuous(*fixture().fits, range(),
                                   Scheme::kPerComponent, -1.0),
               Error);
}

TEST(Continuous, SatisfiesConstraint) {
  const double lo = fastest_fitted(Scheme::kPerComponent);
  for (Scheme s : {Scheme::kPerComponent, Scheme::kArrayPeriphery,
                   Scheme::kUniform}) {
    for (double factor : {1.1, 1.4, 1.9}) {
      const auto r = optimize_continuous(*fixture().fits, range(), s,
                                         lo * factor);
      ASSERT_TRUE(r.has_value()) << factor;
      EXPECT_LE(r->access_time_s, lo * factor * (1 + 1e-9)) << factor;
      // The reported metrics must match re-evaluating the assignment.
      EXPECT_NEAR(fixture().fits->leakage_w(r->assignment), r->leakage_w,
                  r->leakage_w * 1e-9);
    }
  }
}

TEST(Continuous, ConstraintInactiveAtVeryLooseTargets) {
  // With a huge budget the solution is the pure leakage minimum: the
  // slow/thick corner of the box.
  const auto r = optimize_continuous(*fixture().fits, range(),
                                     Scheme::kPerComponent, 1.0 /*1 second*/);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->lambda, 0.0);
  for (ComponentKind kind : cachemodel::kAllComponents) {
    const auto& k = r->assignment.get(kind);
    EXPECT_NEAR(k.vth_v, range().vth_max_v, 1e-6);
    EXPECT_NEAR(k.tox_a, range().tox_max_a, 1e-4);
  }
}

TEST(Continuous, BeatsOrMatchesCoarseGridAndTracksFineGrid) {
  // The continuous optimum on the same (fitted) objective must be at least
  // as good as any grid-restricted optimum, and the fine grid should come
  // close to it.
  const auto eval = fitted_evaluator(*fixture().fits, *fixture().model);
  const double lo = fastest_fitted(Scheme::kPerComponent);
  for (double factor : {1.2, 1.5}) {
    const double target = lo * factor;
    const auto cont = optimize_continuous(*fixture().fits, range(),
                                          Scheme::kPerComponent, target);
    const auto coarse = optimize_single_cache(
        eval, KnobGrid::paper_default(), Scheme::kPerComponent, target);
    const auto fine = optimize_single_cache(eval, KnobGrid::fine(),
                                            Scheme::kPerComponent, target);
    ASSERT_TRUE(cont && coarse && fine) << factor;
    EXPECT_LE(cont->leakage_w, coarse->leakage_w * (1 + 1e-6)) << factor;
    EXPECT_LE(cont->leakage_w, fine->leakage_w * (1 + 1e-6)) << factor;
    // Fine grid within ~20% of continuous; coarse can be further off.
    EXPECT_LE(fine->leakage_w, cont->leakage_w * 1.25) << factor;
  }
}

TEST(Continuous, SchemeOrderingPreserved) {
  const double lo = fastest_fitted(Scheme::kUniform);
  for (double factor : {1.15, 1.5}) {
    const auto s1 = optimize_continuous(*fixture().fits, range(),
                                        Scheme::kPerComponent, lo * factor);
    const auto s2 = optimize_continuous(*fixture().fits, range(),
                                        Scheme::kArrayPeriphery, lo * factor);
    const auto s3 = optimize_continuous(*fixture().fits, range(),
                                        Scheme::kUniform, lo * factor);
    ASSERT_TRUE(s1 && s2 && s3) << factor;
    EXPECT_LE(s1->leakage_w, s2->leakage_w * (1 + 1e-6)) << factor;
    EXPECT_LE(s2->leakage_w, s3->leakage_w * (1 + 1e-6)) << factor;
  }
}

TEST(Continuous, SchemeSharingStructureRespected) {
  const double lo = fastest_fitted(Scheme::kUniform);
  const auto s2 = optimize_continuous(*fixture().fits, range(),
                                      Scheme::kArrayPeriphery, lo * 1.3);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->assignment.get(ComponentKind::kDecoder),
            s2->assignment.get(ComponentKind::kAddressDrivers));
  EXPECT_EQ(s2->assignment.get(ComponentKind::kDecoder),
            s2->assignment.get(ComponentKind::kDataDrivers));
  const auto s3 = optimize_continuous(*fixture().fits, range(),
                                      Scheme::kUniform, lo * 1.3);
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(s3->assignment.get(ComponentKind::kCellArray),
            s3->assignment.get(ComponentKind::kDataDrivers));
}

TEST(Continuous, ArrayConservativeInContinuousOptimaToo) {
  const double lo = fastest_fitted(Scheme::kPerComponent);
  const auto r = optimize_continuous(*fixture().fits, range(),
                                     Scheme::kPerComponent, lo * 1.3);
  ASSERT_TRUE(r.has_value());
  const auto& arr = r->assignment.get(ComponentKind::kCellArray);
  const auto& dec = r->assignment.get(ComponentKind::kDecoder);
  EXPECT_GE(arr.vth_v, dec.vth_v - 1e-6);
  EXPECT_GE(arr.tox_a, dec.tox_a - 1e-4);
}

TEST(Continuous, TighterConstraintNeverReducesLeakage) {
  const double lo = fastest_fitted(Scheme::kArrayPeriphery);
  double prev = std::numeric_limits<double>::infinity();
  for (double factor : {1.08, 1.2, 1.4, 1.8}) {
    const auto r = optimize_continuous(*fixture().fits, range(),
                                       Scheme::kArrayPeriphery, lo * factor);
    ASSERT_TRUE(r.has_value()) << factor;
    EXPECT_LE(r->leakage_w, prev * (1 + 1e-6)) << factor;
    prev = r->leakage_w;
  }
}

}  // namespace
}  // namespace nanocache::opt
