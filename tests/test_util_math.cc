// Unit tests for the numerical toolbox: linear algebra, the exponential
// fits behind the paper's Eq. (1)/(2), power-law fitting, interpolation and
// the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/interp.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/units.h"

namespace nanocache::math {
namespace {

TEST(SolveLinearSystem, Identity) {
  const auto x = solve_linear_system({1, 0, 0, 1}, {3.0, -4.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -4.0);
}

TEST(SolveLinearSystem, General3x3) {
  // A * [1, -2, 3]^T with A chosen to require pivoting.
  const std::vector<double> a = {0, 2, 1,  //
                                 1, 1, 1,  //
                                 2, 0, -1};
  const std::vector<double> b = {2 * -2 + 3, 1 - 2 + 3, 2 * 1 - 3};
  const auto x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1.0, 2.0}), Error);
}

TEST(SolveLinearSystem, SizeMismatchThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 3}, {1.0, 2.0}), Error);
}

TEST(LeastSquares, ExactLineRecovered) {
  // y = 2 + 3x sampled without noise.
  std::vector<double> design;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    design.push_back(1.0);
    design.push_back(i);
    y.push_back(2.0 + 3.0 * i);
  }
  const auto beta = least_squares(design, 2, y);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], 3.0, 1e-6);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Points not on a line; the LS slope of y = x^2 over {0,1,2} is 2.
  const std::vector<double> design = {1, 0, 1, 1, 1, 2};
  const std::vector<double> y = {0, 1, 4};
  const auto beta = least_squares(design, 2, y);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(least_squares({1.0, 2.0}, 2, {1.0}), Error);
}

TEST(RSquared, PerfectFitIsOne) {
  EXPECT_DOUBLE_EQ(r_squared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  EXPECT_NEAR(r_squared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(RSquared, MismatchedSizesThrow) {
  EXPECT_THROW(r_squared({1.0}, {1.0, 2.0}), Error);
}

TEST(FitExponential, RecoversKnownCurve) {
  // y = 5 + 2 e^(-3x)
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(i * 0.1);
    y.push_back(5.0 + 2.0 * std::exp(-3.0 * i * 0.1));
  }
  const auto fit = fit_exponential(x, y, -10.0, -0.5);
  EXPECT_NEAR(fit.rate, -3.0, 0.05);
  EXPECT_NEAR(fit.c0, 5.0, 0.02);
  EXPECT_NEAR(fit.c1, 2.0, 0.02);
  EXPECT_GT(fit.r2, 0.9999);
}

TEST(FitExponential, EvaluatesThroughOperator) {
  ExpFit f;
  f.c0 = 1.0;
  f.c1 = 2.0;
  f.rate = 0.5;
  EXPECT_NEAR(f(2.0), 1.0 + 2.0 * std::exp(1.0), 1e-12);
}

TEST(FitExponential, TooFewSamplesThrows) {
  EXPECT_THROW(fit_exponential({1.0, 2.0}, {1.0, 2.0}, -1, 1), Error);
}

TEST(FitSeparableExponentials, RecoversTwoAxisModel) {
  // z = 1 + 4 e^(-20 x) + 9 e^(-0.8 y): the leakage-model shape.
  std::vector<double> x, y, z;
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 4; ++j) {
      const double xv = 0.2 + 0.05 * i;
      const double yv = 10.0 + j;
      x.push_back(xv);
      y.push_back(yv);
      z.push_back(1.0 + 4.0 * std::exp(-20.0 * xv) + 9.0 * std::exp(-0.8 * yv));
    }
  }
  const auto fit =
      fit_separable_exponentials(x, y, z, -40, -5, -2.0, -0.2, 60);
  EXPECT_GT(fit.r2_score, 0.999);
  EXPECT_NEAR(fit.r1, -20.0, 1.0);
  EXPECT_NEAR(fit.r2, -0.8, 0.05);
}

TEST(FitExpLinear, RecoversDelayShape) {
  // z = 10 + 0.5 e^(2 x) + 3 y: the delay-model shape (Eq. 2).
  std::vector<double> x, y, z;
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 4; ++j) {
      const double xv = 0.2 + 0.05 * i;
      const double yv = 10.0 + j;
      x.push_back(xv);
      y.push_back(yv);
      z.push_back(10.0 + 0.5 * std::exp(2.0 * xv) + 3.0 * yv);
    }
  }
  const auto fit = fit_exp_linear(x, y, z, 0.5, 6.0, 200);
  EXPECT_GT(fit.r2_score, 0.9999);
  EXPECT_NEAR(fit.rate, 2.0, 0.1);
  EXPECT_NEAR(fit.c2, 3.0, 0.01);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 16; i *= 2) {
    x.push_back(i);
    y.push_back(3.0 * std::pow(i, -0.5));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, -0.5, 1e-9);
  EXPECT_NEAR(fit.scale, 3.0, 1e-9);
  EXPECT_GT(fit.r2_log, 0.999999);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0, -1.0}), Error);
  EXPECT_THROW(fit_power_law({0.0, 2.0}, {1.0, 1.0}), Error);
}

TEST(Interpolator, ExactAtKnots) {
  LinearInterpolator f({1, 2, 4}, {10, 20, 40});
  EXPECT_DOUBLE_EQ(f(1), 10);
  EXPECT_DOUBLE_EQ(f(2), 20);
  EXPECT_DOUBLE_EQ(f(4), 40);
}

TEST(Interpolator, LinearBetweenKnots) {
  LinearInterpolator f({0, 10}, {0, 100});
  EXPECT_DOUBLE_EQ(f(2.5), 25);
  EXPECT_DOUBLE_EQ(f(7.5), 75);
}

TEST(Interpolator, ClampsOutsideRange) {
  LinearInterpolator f({1, 2}, {5, 6});
  EXPECT_DOUBLE_EQ(f(0), 5);
  EXPECT_DOUBLE_EQ(f(3), 6);
}

TEST(Interpolator, RejectsUnsortedAbscissa) {
  EXPECT_THROW(LinearInterpolator({2, 1}, {0, 0}), Error);
  EXPECT_THROW(LinearInterpolator({1, 1}, {0, 0}), Error);
}

TEST(Interpolator, RejectsTinyTables) {
  EXPECT_THROW(LinearInterpolator({1}, {1}), Error);
}

// --- RNG ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hits[r.below(8)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);  // each bucket near 1000
  }
}

// --- units --------------------------------------------------------------

TEST(Units, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(units::mw_to_watts(units::watts_to_mw(0.123)), 0.123);
  EXPECT_DOUBLE_EQ(units::ps_to_seconds(units::seconds_to_ps(1e-9)), 1e-9);
  EXPECT_DOUBLE_EQ(units::pj_to_joules(units::joules_to_pj(2e-12)), 2e-12);
}

TEST(Units, ThermalVoltageAtRoomTemp) {
  EXPECT_NEAR(units::thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(Units, OxideCapScalesInversely) {
  EXPECT_NEAR(units::cox_per_um2(10.0) / units::cox_per_um2(20.0), 2.0,
              1e-12);
  // ~34.5 fF/um^2 at 1 nm.
  EXPECT_NEAR(units::cox_per_um2(10.0) * 1e15, 34.5, 0.5);
}

}  // namespace
}  // namespace nanocache::math
