# Empty dependencies file for standby_power_budget.
# This may be replaced when dependencies are built.
