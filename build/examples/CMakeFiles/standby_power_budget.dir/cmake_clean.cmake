file(REMOVE_RECURSE
  "CMakeFiles/standby_power_budget.dir/standby_power_budget.cpp.o"
  "CMakeFiles/standby_power_budget.dir/standby_power_budget.cpp.o.d"
  "standby_power_budget"
  "standby_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standby_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
