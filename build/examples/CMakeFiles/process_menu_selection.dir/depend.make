# Empty dependencies file for process_menu_selection.
# This may be replaced when dependencies are built.
