file(REMOVE_RECURSE
  "CMakeFiles/process_menu_selection.dir/process_menu_selection.cpp.o"
  "CMakeFiles/process_menu_selection.dir/process_menu_selection.cpp.o.d"
  "process_menu_selection"
  "process_menu_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_menu_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
