# Empty dependencies file for embedded_l2_sizing.
# This may be replaced when dependencies are built.
