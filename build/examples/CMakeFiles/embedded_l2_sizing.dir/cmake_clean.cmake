file(REMOVE_RECURSE
  "CMakeFiles/embedded_l2_sizing.dir/embedded_l2_sizing.cpp.o"
  "CMakeFiles/embedded_l2_sizing.dir/embedded_l2_sizing.cpp.o.d"
  "embedded_l2_sizing"
  "embedded_l2_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_l2_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
