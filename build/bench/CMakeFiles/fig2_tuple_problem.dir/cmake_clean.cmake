file(REMOVE_RECURSE
  "CMakeFiles/fig2_tuple_problem.dir/fig2_tuple_problem.cc.o"
  "CMakeFiles/fig2_tuple_problem.dir/fig2_tuple_problem.cc.o.d"
  "fig2_tuple_problem"
  "fig2_tuple_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tuple_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
