# Empty dependencies file for fig2_tuple_problem.
# This may be replaced when dependencies are built.
