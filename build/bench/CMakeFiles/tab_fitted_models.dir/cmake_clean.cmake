file(REMOVE_RECURSE
  "CMakeFiles/tab_fitted_models.dir/tab_fitted_models.cc.o"
  "CMakeFiles/tab_fitted_models.dir/tab_fitted_models.cc.o.d"
  "tab_fitted_models"
  "tab_fitted_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fitted_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
