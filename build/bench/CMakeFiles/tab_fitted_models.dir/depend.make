# Empty dependencies file for tab_fitted_models.
# This may be replaced when dependencies are built.
