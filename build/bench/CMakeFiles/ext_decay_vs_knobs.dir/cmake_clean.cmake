file(REMOVE_RECURSE
  "CMakeFiles/ext_decay_vs_knobs.dir/ext_decay_vs_knobs.cc.o"
  "CMakeFiles/ext_decay_vs_knobs.dir/ext_decay_vs_knobs.cc.o.d"
  "ext_decay_vs_knobs"
  "ext_decay_vs_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decay_vs_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
