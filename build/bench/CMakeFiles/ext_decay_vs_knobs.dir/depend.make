# Empty dependencies file for ext_decay_vs_knobs.
# This may be replaced when dependencies are built.
