file(REMOVE_RECURSE
  "CMakeFiles/tab_scheme_comparison.dir/tab_scheme_comparison.cc.o"
  "CMakeFiles/tab_scheme_comparison.dir/tab_scheme_comparison.cc.o.d"
  "tab_scheme_comparison"
  "tab_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
