# Empty compiler generated dependencies file for tab_scheme_comparison.
# This may be replaced when dependencies are built.
