file(REMOVE_RECURSE
  "CMakeFiles/abl_variation.dir/abl_variation.cc.o"
  "CMakeFiles/abl_variation.dir/abl_variation.cc.o.d"
  "abl_variation"
  "abl_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
