# Empty compiler generated dependencies file for abl_corners.
# This may be replaced when dependencies are built.
