file(REMOVE_RECURSE
  "CMakeFiles/abl_corners.dir/abl_corners.cc.o"
  "CMakeFiles/abl_corners.dir/abl_corners.cc.o.d"
  "abl_corners"
  "abl_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
