file(REMOVE_RECURSE
  "CMakeFiles/tab_delay_breakdown.dir/tab_delay_breakdown.cc.o"
  "CMakeFiles/tab_delay_breakdown.dir/tab_delay_breakdown.cc.o.d"
  "tab_delay_breakdown"
  "tab_delay_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_delay_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
