# Empty compiler generated dependencies file for tab_delay_breakdown.
# This may be replaced when dependencies are built.
