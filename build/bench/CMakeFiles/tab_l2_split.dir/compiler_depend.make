# Empty compiler generated dependencies file for tab_l2_split.
# This may be replaced when dependencies are built.
