file(REMOVE_RECURSE
  "CMakeFiles/tab_l2_split.dir/tab_l2_split.cc.o"
  "CMakeFiles/tab_l2_split.dir/tab_l2_split.cc.o.d"
  "tab_l2_split"
  "tab_l2_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_l2_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
