file(REMOVE_RECURSE
  "CMakeFiles/abl_temperature.dir/abl_temperature.cc.o"
  "CMakeFiles/abl_temperature.dir/abl_temperature.cc.o.d"
  "abl_temperature"
  "abl_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
