# Empty dependencies file for abl_temperature.
# This may be replaced when dependencies are built.
