file(REMOVE_RECURSE
  "CMakeFiles/abl_gate_leakage.dir/abl_gate_leakage.cc.o"
  "CMakeFiles/abl_gate_leakage.dir/abl_gate_leakage.cc.o.d"
  "abl_gate_leakage"
  "abl_gate_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gate_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
