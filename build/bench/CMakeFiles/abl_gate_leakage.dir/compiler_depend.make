# Empty compiler generated dependencies file for abl_gate_leakage.
# This may be replaced when dependencies are built.
