file(REMOVE_RECURSE
  "CMakeFiles/fig1_fixed_knob.dir/fig1_fixed_knob.cc.o"
  "CMakeFiles/fig1_fixed_knob.dir/fig1_fixed_knob.cc.o.d"
  "fig1_fixed_knob"
  "fig1_fixed_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fixed_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
