# Empty dependencies file for fig1_fixed_knob.
# This may be replaced when dependencies are built.
