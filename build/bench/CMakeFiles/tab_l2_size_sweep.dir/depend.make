# Empty dependencies file for tab_l2_size_sweep.
# This may be replaced when dependencies are built.
