file(REMOVE_RECURSE
  "CMakeFiles/tab_l2_size_sweep.dir/tab_l2_size_sweep.cc.o"
  "CMakeFiles/tab_l2_size_sweep.dir/tab_l2_size_sweep.cc.o.d"
  "tab_l2_size_sweep"
  "tab_l2_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_l2_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
