# Empty compiler generated dependencies file for perf_library.
# This may be replaced when dependencies are built.
