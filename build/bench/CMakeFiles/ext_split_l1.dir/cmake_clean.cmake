file(REMOVE_RECURSE
  "CMakeFiles/ext_split_l1.dir/ext_split_l1.cc.o"
  "CMakeFiles/ext_split_l1.dir/ext_split_l1.cc.o.d"
  "ext_split_l1"
  "ext_split_l1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_split_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
