# Empty dependencies file for ext_split_l1.
# This may be replaced when dependencies are built.
