file(REMOVE_RECURSE
  "CMakeFiles/tab_leakage_breakdown.dir/tab_leakage_breakdown.cc.o"
  "CMakeFiles/tab_leakage_breakdown.dir/tab_leakage_breakdown.cc.o.d"
  "tab_leakage_breakdown"
  "tab_leakage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_leakage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
