# Empty dependencies file for tab_leakage_breakdown.
# This may be replaced when dependencies are built.
