# Empty compiler generated dependencies file for abl_area_scaling.
# This may be replaced when dependencies are built.
