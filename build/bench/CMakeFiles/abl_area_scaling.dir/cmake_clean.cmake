file(REMOVE_RECURSE
  "CMakeFiles/abl_area_scaling.dir/abl_area_scaling.cc.o"
  "CMakeFiles/abl_area_scaling.dir/abl_area_scaling.cc.o.d"
  "abl_area_scaling"
  "abl_area_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_area_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
