# Empty dependencies file for ext_joint_sizing.
# This may be replaced when dependencies are built.
