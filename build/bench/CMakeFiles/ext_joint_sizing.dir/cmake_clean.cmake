file(REMOVE_RECURSE
  "CMakeFiles/ext_joint_sizing.dir/ext_joint_sizing.cc.o"
  "CMakeFiles/ext_joint_sizing.dir/ext_joint_sizing.cc.o.d"
  "ext_joint_sizing"
  "ext_joint_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_joint_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
