# Empty dependencies file for tab_miss_curves.
# This may be replaced when dependencies are built.
