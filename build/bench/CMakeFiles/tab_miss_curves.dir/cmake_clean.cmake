file(REMOVE_RECURSE
  "CMakeFiles/tab_miss_curves.dir/tab_miss_curves.cc.o"
  "CMakeFiles/tab_miss_curves.dir/tab_miss_curves.cc.o.d"
  "tab_miss_curves"
  "tab_miss_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_miss_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
