file(REMOVE_RECURSE
  "CMakeFiles/tab_baseline_knobs.dir/tab_baseline_knobs.cc.o"
  "CMakeFiles/tab_baseline_knobs.dir/tab_baseline_knobs.cc.o.d"
  "tab_baseline_knobs"
  "tab_baseline_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_baseline_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
