# Empty dependencies file for tab_baseline_knobs.
# This may be replaced when dependencies are built.
