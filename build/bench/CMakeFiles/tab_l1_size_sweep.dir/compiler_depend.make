# Empty compiler generated dependencies file for tab_l1_size_sweep.
# This may be replaced when dependencies are built.
