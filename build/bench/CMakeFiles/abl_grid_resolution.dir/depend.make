# Empty dependencies file for abl_grid_resolution.
# This may be replaced when dependencies are built.
