file(REMOVE_RECURSE
  "CMakeFiles/abl_grid_resolution.dir/abl_grid_resolution.cc.o"
  "CMakeFiles/abl_grid_resolution.dir/abl_grid_resolution.cc.o.d"
  "abl_grid_resolution"
  "abl_grid_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grid_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
