# Empty compiler generated dependencies file for abl_node_scaling.
# This may be replaced when dependencies are built.
