file(REMOVE_RECURSE
  "CMakeFiles/abl_node_scaling.dir/abl_node_scaling.cc.o"
  "CMakeFiles/abl_node_scaling.dir/abl_node_scaling.cc.o.d"
  "abl_node_scaling"
  "abl_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
