file(REMOVE_RECURSE
  "CMakeFiles/test_cachemodel_scaling.dir/test_cachemodel_scaling.cc.o"
  "CMakeFiles/test_cachemodel_scaling.dir/test_cachemodel_scaling.cc.o.d"
  "test_cachemodel_scaling"
  "test_cachemodel_scaling.pdb"
  "test_cachemodel_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachemodel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
