# Empty dependencies file for test_cachemodel_scaling.
# This may be replaced when dependencies are built.
