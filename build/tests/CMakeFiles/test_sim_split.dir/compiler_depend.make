# Empty compiler generated dependencies file for test_sim_split.
# This may be replaced when dependencies are built.
