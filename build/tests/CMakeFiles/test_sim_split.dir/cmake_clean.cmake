file(REMOVE_RECURSE
  "CMakeFiles/test_sim_split.dir/test_sim_split.cc.o"
  "CMakeFiles/test_sim_split.dir/test_sim_split.cc.o.d"
  "test_sim_split"
  "test_sim_split.pdb"
  "test_sim_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
