file(REMOVE_RECURSE
  "CMakeFiles/test_tech_nodes.dir/test_tech_nodes.cc.o"
  "CMakeFiles/test_tech_nodes.dir/test_tech_nodes.cc.o.d"
  "test_tech_nodes"
  "test_tech_nodes.pdb"
  "test_tech_nodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
