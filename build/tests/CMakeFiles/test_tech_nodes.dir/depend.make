# Empty dependencies file for test_tech_nodes.
# This may be replaced when dependencies are built.
