file(REMOVE_RECURSE
  "CMakeFiles/test_core_joint.dir/test_core_joint.cc.o"
  "CMakeFiles/test_core_joint.dir/test_core_joint.cc.o.d"
  "test_core_joint"
  "test_core_joint.pdb"
  "test_core_joint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
