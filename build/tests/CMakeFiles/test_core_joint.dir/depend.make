# Empty dependencies file for test_core_joint.
# This may be replaced when dependencies are built.
