file(REMOVE_RECURSE
  "CMakeFiles/test_sim_suite.dir/test_sim_suite.cc.o"
  "CMakeFiles/test_sim_suite.dir/test_sim_suite.cc.o.d"
  "test_sim_suite"
  "test_sim_suite.pdb"
  "test_sim_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
