# Empty dependencies file for test_sim_suite.
# This may be replaced when dependencies are built.
