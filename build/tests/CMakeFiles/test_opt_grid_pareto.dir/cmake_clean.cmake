file(REMOVE_RECURSE
  "CMakeFiles/test_opt_grid_pareto.dir/test_opt_grid_pareto.cc.o"
  "CMakeFiles/test_opt_grid_pareto.dir/test_opt_grid_pareto.cc.o.d"
  "test_opt_grid_pareto"
  "test_opt_grid_pareto.pdb"
  "test_opt_grid_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_grid_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
