# Empty dependencies file for test_opt_grid_pareto.
# This may be replaced when dependencies are built.
