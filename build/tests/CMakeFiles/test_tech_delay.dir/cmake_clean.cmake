file(REMOVE_RECURSE
  "CMakeFiles/test_tech_delay.dir/test_tech_delay.cc.o"
  "CMakeFiles/test_tech_delay.dir/test_tech_delay.cc.o.d"
  "test_tech_delay"
  "test_tech_delay.pdb"
  "test_tech_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
