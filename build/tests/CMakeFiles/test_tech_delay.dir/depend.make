# Empty dependencies file for test_tech_delay.
# This may be replaced when dependencies are built.
