file(REMOVE_RECURSE
  "CMakeFiles/test_feature_extensions.dir/test_feature_extensions.cc.o"
  "CMakeFiles/test_feature_extensions.dir/test_feature_extensions.cc.o.d"
  "test_feature_extensions"
  "test_feature_extensions.pdb"
  "test_feature_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
