# Empty compiler generated dependencies file for test_opt_anneal_variation.
# This may be replaced when dependencies are built.
