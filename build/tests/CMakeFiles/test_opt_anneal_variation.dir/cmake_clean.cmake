file(REMOVE_RECURSE
  "CMakeFiles/test_opt_anneal_variation.dir/test_opt_anneal_variation.cc.o"
  "CMakeFiles/test_opt_anneal_variation.dir/test_opt_anneal_variation.cc.o.d"
  "test_opt_anneal_variation"
  "test_opt_anneal_variation.pdb"
  "test_opt_anneal_variation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_anneal_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
