# Empty dependencies file for test_cachemodel_org.
# This may be replaced when dependencies are built.
