file(REMOVE_RECURSE
  "CMakeFiles/test_cachemodel_org.dir/test_cachemodel_org.cc.o"
  "CMakeFiles/test_cachemodel_org.dir/test_cachemodel_org.cc.o.d"
  "test_cachemodel_org"
  "test_cachemodel_org.pdb"
  "test_cachemodel_org[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachemodel_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
