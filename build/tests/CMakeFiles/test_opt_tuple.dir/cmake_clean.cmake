file(REMOVE_RECURSE
  "CMakeFiles/test_opt_tuple.dir/test_opt_tuple.cc.o"
  "CMakeFiles/test_opt_tuple.dir/test_opt_tuple.cc.o.d"
  "test_opt_tuple"
  "test_opt_tuple.pdb"
  "test_opt_tuple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
