# Empty dependencies file for test_opt_tuple.
# This may be replaced when dependencies are built.
