file(REMOVE_RECURSE
  "CMakeFiles/test_sim_generators.dir/test_sim_generators.cc.o"
  "CMakeFiles/test_sim_generators.dir/test_sim_generators.cc.o.d"
  "test_sim_generators"
  "test_sim_generators.pdb"
  "test_sim_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
