# Empty compiler generated dependencies file for test_sim_generators.
# This may be replaced when dependencies are built.
