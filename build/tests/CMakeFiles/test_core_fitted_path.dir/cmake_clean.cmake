file(REMOVE_RECURSE
  "CMakeFiles/test_core_fitted_path.dir/test_core_fitted_path.cc.o"
  "CMakeFiles/test_core_fitted_path.dir/test_core_fitted_path.cc.o.d"
  "test_core_fitted_path"
  "test_core_fitted_path.pdb"
  "test_core_fitted_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fitted_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
