# Empty dependencies file for test_core_fitted_path.
# This may be replaced when dependencies are built.
