file(REMOVE_RECURSE
  "CMakeFiles/test_sim_differential.dir/test_sim_differential.cc.o"
  "CMakeFiles/test_sim_differential.dir/test_sim_differential.cc.o.d"
  "test_sim_differential"
  "test_sim_differential.pdb"
  "test_sim_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
