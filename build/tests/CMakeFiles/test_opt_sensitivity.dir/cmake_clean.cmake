file(REMOVE_RECURSE
  "CMakeFiles/test_opt_sensitivity.dir/test_opt_sensitivity.cc.o"
  "CMakeFiles/test_opt_sensitivity.dir/test_opt_sensitivity.cc.o.d"
  "test_opt_sensitivity"
  "test_opt_sensitivity.pdb"
  "test_opt_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
