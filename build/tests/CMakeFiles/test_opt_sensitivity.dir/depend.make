# Empty dependencies file for test_opt_sensitivity.
# This may be replaced when dependencies are built.
