file(REMOVE_RECURSE
  "CMakeFiles/test_opt_continuous.dir/test_opt_continuous.cc.o"
  "CMakeFiles/test_opt_continuous.dir/test_opt_continuous.cc.o.d"
  "test_opt_continuous"
  "test_opt_continuous.pdb"
  "test_opt_continuous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
