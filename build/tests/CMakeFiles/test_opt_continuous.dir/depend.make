# Empty dependencies file for test_opt_continuous.
# This may be replaced when dependencies are built.
