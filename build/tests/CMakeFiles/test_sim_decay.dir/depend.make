# Empty dependencies file for test_sim_decay.
# This may be replaced when dependencies are built.
