file(REMOVE_RECURSE
  "CMakeFiles/test_sim_decay.dir/test_sim_decay.cc.o"
  "CMakeFiles/test_sim_decay.dir/test_sim_decay.cc.o.d"
  "test_sim_decay"
  "test_sim_decay.pdb"
  "test_sim_decay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
