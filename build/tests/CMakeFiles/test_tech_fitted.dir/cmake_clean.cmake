file(REMOVE_RECURSE
  "CMakeFiles/test_tech_fitted.dir/test_tech_fitted.cc.o"
  "CMakeFiles/test_tech_fitted.dir/test_tech_fitted.cc.o.d"
  "test_tech_fitted"
  "test_tech_fitted.pdb"
  "test_tech_fitted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_fitted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
