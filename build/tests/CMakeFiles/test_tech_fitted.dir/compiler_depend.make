# Empty compiler generated dependencies file for test_tech_fitted.
# This may be replaced when dependencies are built.
