file(REMOVE_RECURSE
  "CMakeFiles/test_sim_interval.dir/test_sim_interval.cc.o"
  "CMakeFiles/test_sim_interval.dir/test_sim_interval.cc.o.d"
  "test_sim_interval"
  "test_sim_interval.pdb"
  "test_sim_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
