# Empty dependencies file for test_sim_interval.
# This may be replaced when dependencies are built.
