file(REMOVE_RECURSE
  "CMakeFiles/test_sim_cache.dir/test_sim_cache.cc.o"
  "CMakeFiles/test_sim_cache.dir/test_sim_cache.cc.o.d"
  "test_sim_cache"
  "test_sim_cache.pdb"
  "test_sim_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
