
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_math.cc" "tests/CMakeFiles/test_util_math.dir/test_util_math.cc.o" "gcc" "tests/CMakeFiles/test_util_math.dir/test_util_math.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nanocache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/nanocache_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/nanocache_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nanocache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/nanocache_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nanocache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
