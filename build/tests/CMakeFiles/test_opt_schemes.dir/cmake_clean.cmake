file(REMOVE_RECURSE
  "CMakeFiles/test_opt_schemes.dir/test_opt_schemes.cc.o"
  "CMakeFiles/test_opt_schemes.dir/test_opt_schemes.cc.o.d"
  "test_opt_schemes"
  "test_opt_schemes.pdb"
  "test_opt_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
