# Empty compiler generated dependencies file for test_sim_prefetch.
# This may be replaced when dependencies are built.
