file(REMOVE_RECURSE
  "CMakeFiles/test_sim_prefetch.dir/test_sim_prefetch.cc.o"
  "CMakeFiles/test_sim_prefetch.dir/test_sim_prefetch.cc.o.d"
  "test_sim_prefetch"
  "test_sim_prefetch.pdb"
  "test_sim_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
