file(REMOVE_RECURSE
  "CMakeFiles/test_util_chart.dir/test_util_chart.cc.o"
  "CMakeFiles/test_util_chart.dir/test_util_chart.cc.o.d"
  "test_util_chart"
  "test_util_chart.pdb"
  "test_util_chart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
