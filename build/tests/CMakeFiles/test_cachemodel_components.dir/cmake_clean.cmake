file(REMOVE_RECURSE
  "CMakeFiles/test_cachemodel_components.dir/test_cachemodel_components.cc.o"
  "CMakeFiles/test_cachemodel_components.dir/test_cachemodel_components.cc.o.d"
  "test_cachemodel_components"
  "test_cachemodel_components.pdb"
  "test_cachemodel_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachemodel_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
