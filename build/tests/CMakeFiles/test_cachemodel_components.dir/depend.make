# Empty dependencies file for test_cachemodel_components.
# This may be replaced when dependencies are built.
