# Empty dependencies file for test_tech_device.
# This may be replaced when dependencies are built.
