file(REMOVE_RECURSE
  "CMakeFiles/test_tech_device.dir/test_tech_device.cc.o"
  "CMakeFiles/test_tech_device.dir/test_tech_device.cc.o.d"
  "test_tech_device"
  "test_tech_device.pdb"
  "test_tech_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
