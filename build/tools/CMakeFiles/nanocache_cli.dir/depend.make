# Empty dependencies file for nanocache_cli.
# This may be replaced when dependencies are built.
