file(REMOVE_RECURSE
  "CMakeFiles/nanocache_cli.dir/nanocache_cli.cc.o"
  "CMakeFiles/nanocache_cli.dir/nanocache_cli.cc.o.d"
  "nanocache_cli"
  "nanocache_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
