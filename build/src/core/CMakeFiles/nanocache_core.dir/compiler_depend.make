# Empty compiler generated dependencies file for nanocache_core.
# This may be replaced when dependencies are built.
