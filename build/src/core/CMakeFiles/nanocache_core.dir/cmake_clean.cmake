file(REMOVE_RECURSE
  "CMakeFiles/nanocache_core.dir/config.cc.o"
  "CMakeFiles/nanocache_core.dir/config.cc.o.d"
  "CMakeFiles/nanocache_core.dir/explorer.cc.o"
  "CMakeFiles/nanocache_core.dir/explorer.cc.o.d"
  "CMakeFiles/nanocache_core.dir/report.cc.o"
  "CMakeFiles/nanocache_core.dir/report.cc.o.d"
  "libnanocache_core.a"
  "libnanocache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
