file(REMOVE_RECURSE
  "libnanocache_core.a"
)
