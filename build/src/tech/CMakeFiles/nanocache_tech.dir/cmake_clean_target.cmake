file(REMOVE_RECURSE
  "libnanocache_tech.a"
)
