file(REMOVE_RECURSE
  "CMakeFiles/nanocache_tech.dir/characterize.cc.o"
  "CMakeFiles/nanocache_tech.dir/characterize.cc.o.d"
  "CMakeFiles/nanocache_tech.dir/corners.cc.o"
  "CMakeFiles/nanocache_tech.dir/corners.cc.o.d"
  "CMakeFiles/nanocache_tech.dir/delay.cc.o"
  "CMakeFiles/nanocache_tech.dir/delay.cc.o.d"
  "CMakeFiles/nanocache_tech.dir/device.cc.o"
  "CMakeFiles/nanocache_tech.dir/device.cc.o.d"
  "CMakeFiles/nanocache_tech.dir/fitted.cc.o"
  "CMakeFiles/nanocache_tech.dir/fitted.cc.o.d"
  "CMakeFiles/nanocache_tech.dir/params.cc.o"
  "CMakeFiles/nanocache_tech.dir/params.cc.o.d"
  "libnanocache_tech.a"
  "libnanocache_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
