# Empty compiler generated dependencies file for nanocache_tech.
# This may be replaced when dependencies are built.
