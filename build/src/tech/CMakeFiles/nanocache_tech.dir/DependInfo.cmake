
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/characterize.cc" "src/tech/CMakeFiles/nanocache_tech.dir/characterize.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/characterize.cc.o.d"
  "/root/repo/src/tech/corners.cc" "src/tech/CMakeFiles/nanocache_tech.dir/corners.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/corners.cc.o.d"
  "/root/repo/src/tech/delay.cc" "src/tech/CMakeFiles/nanocache_tech.dir/delay.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/delay.cc.o.d"
  "/root/repo/src/tech/device.cc" "src/tech/CMakeFiles/nanocache_tech.dir/device.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/device.cc.o.d"
  "/root/repo/src/tech/fitted.cc" "src/tech/CMakeFiles/nanocache_tech.dir/fitted.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/fitted.cc.o.d"
  "/root/repo/src/tech/params.cc" "src/tech/CMakeFiles/nanocache_tech.dir/params.cc.o" "gcc" "src/tech/CMakeFiles/nanocache_tech.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nanocache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
