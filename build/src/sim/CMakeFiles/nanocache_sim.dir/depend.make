# Empty dependencies file for nanocache_sim.
# This may be replaced when dependencies are built.
