file(REMOVE_RECURSE
  "CMakeFiles/nanocache_sim.dir/cache.cc.o"
  "CMakeFiles/nanocache_sim.dir/cache.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/generators.cc.o"
  "CMakeFiles/nanocache_sim.dir/generators.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/hierarchy.cc.o"
  "CMakeFiles/nanocache_sim.dir/hierarchy.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/interval.cc.o"
  "CMakeFiles/nanocache_sim.dir/interval.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/missmodel.cc.o"
  "CMakeFiles/nanocache_sim.dir/missmodel.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/suite.cc.o"
  "CMakeFiles/nanocache_sim.dir/suite.cc.o.d"
  "CMakeFiles/nanocache_sim.dir/trace_io.cc.o"
  "CMakeFiles/nanocache_sim.dir/trace_io.cc.o.d"
  "libnanocache_sim.a"
  "libnanocache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
