file(REMOVE_RECURSE
  "libnanocache_sim.a"
)
