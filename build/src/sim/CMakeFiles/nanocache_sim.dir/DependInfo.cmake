
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/nanocache_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/generators.cc" "src/sim/CMakeFiles/nanocache_sim.dir/generators.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/generators.cc.o.d"
  "/root/repo/src/sim/hierarchy.cc" "src/sim/CMakeFiles/nanocache_sim.dir/hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/hierarchy.cc.o.d"
  "/root/repo/src/sim/interval.cc" "src/sim/CMakeFiles/nanocache_sim.dir/interval.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/interval.cc.o.d"
  "/root/repo/src/sim/missmodel.cc" "src/sim/CMakeFiles/nanocache_sim.dir/missmodel.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/missmodel.cc.o.d"
  "/root/repo/src/sim/suite.cc" "src/sim/CMakeFiles/nanocache_sim.dir/suite.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/suite.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/nanocache_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/nanocache_sim.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nanocache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
