file(REMOVE_RECURSE
  "libnanocache_energy.a"
)
