file(REMOVE_RECURSE
  "CMakeFiles/nanocache_energy.dir/memory_system.cc.o"
  "CMakeFiles/nanocache_energy.dir/memory_system.cc.o.d"
  "CMakeFiles/nanocache_energy.dir/split_system.cc.o"
  "CMakeFiles/nanocache_energy.dir/split_system.cc.o.d"
  "libnanocache_energy.a"
  "libnanocache_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
