# Empty compiler generated dependencies file for nanocache_energy.
# This may be replaced when dependencies are built.
