file(REMOVE_RECURSE
  "CMakeFiles/nanocache_opt.dir/anneal.cc.o"
  "CMakeFiles/nanocache_opt.dir/anneal.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/continuous.cc.o"
  "CMakeFiles/nanocache_opt.dir/continuous.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/grid.cc.o"
  "CMakeFiles/nanocache_opt.dir/grid.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/options.cc.o"
  "CMakeFiles/nanocache_opt.dir/options.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/pareto.cc.o"
  "CMakeFiles/nanocache_opt.dir/pareto.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/schemes.cc.o"
  "CMakeFiles/nanocache_opt.dir/schemes.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/sensitivity.cc.o"
  "CMakeFiles/nanocache_opt.dir/sensitivity.cc.o.d"
  "CMakeFiles/nanocache_opt.dir/tuple_menu.cc.o"
  "CMakeFiles/nanocache_opt.dir/tuple_menu.cc.o.d"
  "libnanocache_opt.a"
  "libnanocache_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
