# Empty compiler generated dependencies file for nanocache_opt.
# This may be replaced when dependencies are built.
