
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/anneal.cc" "src/opt/CMakeFiles/nanocache_opt.dir/anneal.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/anneal.cc.o.d"
  "/root/repo/src/opt/continuous.cc" "src/opt/CMakeFiles/nanocache_opt.dir/continuous.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/continuous.cc.o.d"
  "/root/repo/src/opt/grid.cc" "src/opt/CMakeFiles/nanocache_opt.dir/grid.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/grid.cc.o.d"
  "/root/repo/src/opt/options.cc" "src/opt/CMakeFiles/nanocache_opt.dir/options.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/options.cc.o.d"
  "/root/repo/src/opt/pareto.cc" "src/opt/CMakeFiles/nanocache_opt.dir/pareto.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/pareto.cc.o.d"
  "/root/repo/src/opt/schemes.cc" "src/opt/CMakeFiles/nanocache_opt.dir/schemes.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/schemes.cc.o.d"
  "/root/repo/src/opt/sensitivity.cc" "src/opt/CMakeFiles/nanocache_opt.dir/sensitivity.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/sensitivity.cc.o.d"
  "/root/repo/src/opt/tuple_menu.cc" "src/opt/CMakeFiles/nanocache_opt.dir/tuple_menu.cc.o" "gcc" "src/opt/CMakeFiles/nanocache_opt.dir/tuple_menu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/nanocache_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/nanocache_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nanocache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nanocache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
