file(REMOVE_RECURSE
  "libnanocache_opt.a"
)
