file(REMOVE_RECURSE
  "libnanocache_util.a"
)
