# Empty compiler generated dependencies file for nanocache_util.
# This may be replaced when dependencies are built.
