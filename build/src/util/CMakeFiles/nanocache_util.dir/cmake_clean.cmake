file(REMOVE_RECURSE
  "CMakeFiles/nanocache_util.dir/ascii_chart.cc.o"
  "CMakeFiles/nanocache_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/nanocache_util.dir/error.cc.o"
  "CMakeFiles/nanocache_util.dir/error.cc.o.d"
  "CMakeFiles/nanocache_util.dir/interp.cc.o"
  "CMakeFiles/nanocache_util.dir/interp.cc.o.d"
  "CMakeFiles/nanocache_util.dir/math.cc.o"
  "CMakeFiles/nanocache_util.dir/math.cc.o.d"
  "CMakeFiles/nanocache_util.dir/stats.cc.o"
  "CMakeFiles/nanocache_util.dir/stats.cc.o.d"
  "CMakeFiles/nanocache_util.dir/table.cc.o"
  "CMakeFiles/nanocache_util.dir/table.cc.o.d"
  "libnanocache_util.a"
  "libnanocache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
