# Empty compiler generated dependencies file for nanocache_cachemodel.
# This may be replaced when dependencies are built.
