file(REMOVE_RECURSE
  "CMakeFiles/nanocache_cachemodel.dir/array.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/array.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/cache_model.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/cache_model.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/component.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/component.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/decoder.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/decoder.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/drivers.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/drivers.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/fitted_cache.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/fitted_cache.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/organization.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/organization.cc.o.d"
  "CMakeFiles/nanocache_cachemodel.dir/variation.cc.o"
  "CMakeFiles/nanocache_cachemodel.dir/variation.cc.o.d"
  "libnanocache_cachemodel.a"
  "libnanocache_cachemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocache_cachemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
