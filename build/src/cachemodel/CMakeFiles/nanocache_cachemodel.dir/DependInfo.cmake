
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachemodel/array.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/array.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/array.cc.o.d"
  "/root/repo/src/cachemodel/cache_model.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/cache_model.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/cache_model.cc.o.d"
  "/root/repo/src/cachemodel/component.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/component.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/component.cc.o.d"
  "/root/repo/src/cachemodel/decoder.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/decoder.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/decoder.cc.o.d"
  "/root/repo/src/cachemodel/drivers.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/drivers.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/drivers.cc.o.d"
  "/root/repo/src/cachemodel/fitted_cache.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/fitted_cache.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/fitted_cache.cc.o.d"
  "/root/repo/src/cachemodel/organization.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/organization.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/organization.cc.o.d"
  "/root/repo/src/cachemodel/variation.cc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/variation.cc.o" "gcc" "src/cachemodel/CMakeFiles/nanocache_cachemodel.dir/variation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/nanocache_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nanocache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
