file(REMOVE_RECURSE
  "libnanocache_cachemodel.a"
)
