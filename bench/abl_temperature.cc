// ABL-TEMP — temperature ablation.  Subthreshold leakage grows
// exponentially with temperature (the swing is proportional to kT/q) while
// gate tunnelling is nearly athermal, so the balance between the Vth and
// Tox knobs — the paper's central comparison — shifts with the assumed
// junction temperature.  The paper characterizes at a fixed corner; this
// bench shows how its conclusions move across 300-400 K.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  TextTable t("temperature ablation, 16KB cache");
  t.set_header({"T [K]", "swing [mV/dec]", "leak @(0.2,10) [mW]",
                "leak @(0.5,10) [mW]", "leak @(0.5,14) [mW]",
                "Vth leak gap", "Tox leak gap", "bigger lever"});
  for (double temp : {300.0, 330.0, 358.0, 400.0}) {
    core::ExperimentConfig cfg;
    cfg.technology.temperature_k = temp;
    core::Explorer explorer(cfg);
    const auto& m = explorer.l1_model(16 * 1024);
    const double fast = m.evaluate_uniform({0.2, 10.0}).leakage_w;
    const double mid = m.evaluate_uniform({0.5, 10.0}).leakage_w;
    const double slow = m.evaluate_uniform({0.5, 14.0}).leakage_w;
    const double vth_gap = fast / mid;   // what Vth buys at thin Tox
    const double tox_gap = mid / slow;   // what Tox buys at high Vth
    t.add_row({fmt_fixed(temp, 0),
               fmt_fixed(cfg.technology.subthreshold_swing_mv_per_dec(), 1),
               fmt_fixed(units::watts_to_mw(fast), 2),
               fmt_fixed(units::watts_to_mw(mid), 2),
               fmt_fixed(units::watts_to_mw(slow), 3),
               fmt_fixed(vth_gap, 2) + "x", fmt_fixed(tox_gap, 1) + "x",
               tox_gap > vth_gap ? "Tox" : "Vth"});
  }
  std::cout
      << t << "\n"
      << "hotter silicon leaks more through the channel, so the Vth knob\n"
      << "gains leverage with temperature while the (athermal) gate-\n"
      << "tunnelling floor fixes the Tox leverage; at the paper's 85C\n"
      << "corner Tox remains the bigger total-leakage lever across the\n"
      << "studied window.\n";
  return 0;
}
