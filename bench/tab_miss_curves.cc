// TAB-MISS — the "architectural simulations" backing Section 5: runs the
// synthetic benchmark suite (the SPEC2000/SPECWEB/TPC-C stand-in) through
// the trace-driven two-level simulator and prints the per-workload and
// averaged miss-rate-vs-size curves, alongside the analytic power-law
// models the sweep experiments consume.
#include <algorithm>
#include <iostream>

#include "sim/missmodel.h"
#include "sim/suite.h"
#include "util/table.h"

using namespace nanocache;

int main() {
  sim::SuiteRunConfig cfg;
  // Keep the bench snappy; tests use longer runs.
  cfg.warmup_refs = 150'000;
  cfg.measured_refs = 600'000;

  std::cout << "Simulating " << sim::default_suite().size()
            << " workloads x " << (cfg.l1_sizes.size() + cfg.l2_sizes.size())
            << " cache configurations...\n\n";
  const auto points = sim::measure_suite(cfg);

  // Per-workload L1 curves.
  TextTable t1("local L1 miss rate vs L1 size (L2 fixed at " +
               fmt_bytes(cfg.l2_sizes[cfg.l2_sizes.size() / 2]) + ")");
  std::vector<std::string> header{"workload"};
  for (auto s : cfg.l1_sizes) header.push_back(fmt_bytes(s));
  t1.set_header(header);
  for (const auto& w : sim::default_suite()) {
    std::vector<std::string> row{w.name};
    for (auto size : cfg.l1_sizes) {
      for (const auto& p : points) {
        if (p.workload == w.name && p.l1_bytes == size &&
            p.l2_bytes == cfg.l2_sizes[cfg.l2_sizes.size() / 2]) {
          row.push_back(fmt_fixed(p.l1_miss_rate * 100.0, 2) + "%");
          break;
        }
      }
    }
    t1.add_row(std::move(row));
  }
  const auto l1_avg = sim::average_l1_curve(points, cfg.l1_sizes);
  {
    std::vector<std::string> row{"AVERAGE"};
    for (double m : l1_avg) row.push_back(fmt_fixed(m * 100.0, 2) + "%");
    t1.add_row(std::move(row));
  }
  std::cout << t1 << "\n";

  // Per-workload L2 curves.
  TextTable t2("local L2 miss rate vs L2 size (L1 fixed at " +
               fmt_bytes(cfg.l1_sizes[cfg.l1_sizes.size() / 2]) + ")");
  std::vector<std::string> header2{"workload"};
  for (auto s : cfg.l2_sizes) header2.push_back(fmt_bytes(s));
  t2.set_header(header2);
  for (const auto& w : sim::default_suite()) {
    std::vector<std::string> row{w.name};
    for (auto size : cfg.l2_sizes) {
      for (const auto& p : points) {
        if (p.workload == w.name && p.l2_bytes == size &&
            p.l1_bytes == cfg.l1_sizes[cfg.l1_sizes.size() / 2]) {
          row.push_back(fmt_fixed(p.l2_local_miss_rate * 100.0, 1) + "%");
          break;
        }
      }
    }
    t2.add_row(std::move(row));
  }
  const auto l2_avg = sim::average_l2_curve(points, cfg.l2_sizes);
  {
    std::vector<std::string> row{"AVERAGE"};
    for (double m : l2_avg) row.push_back(fmt_fixed(m * 100.0, 1) + "%");
    t2.add_row(std::move(row));
  }
  std::cout << t2 << "\n";

  // The analytic curves the sweeps consume, next to the measured averages.
  const auto curves = sim::default_miss_curves();
  TextTable t3("analytic model vs simulated average");
  t3.set_header({"level", "size", "model", "simulated"});
  for (std::size_t i = 0; i < cfg.l1_sizes.size(); ++i) {
    t3.add_row({"L1", fmt_bytes(cfg.l1_sizes[i]),
                fmt_fixed(curves.l1(cfg.l1_sizes[i]) * 100.0, 2) + "%",
                fmt_fixed(l1_avg[i] * 100.0, 2) + "%"});
  }
  for (std::size_t i = 0; i < cfg.l2_sizes.size(); ++i) {
    t3.add_row({"L2", fmt_bytes(cfg.l2_sizes[i]),
                fmt_fixed(curves.l2(cfg.l2_sizes[i]) * 100.0, 1) + "%",
                fmt_fixed(l2_avg[i] * 100.0, 1) + "%"});
  }
  std::cout << t3 << "\n";

  // Section 5's premise: L1 local miss rates are low and vary little from
  // 4K to 64K.  "Low" here: every size average under 18%, 16K+ under 12%
  // (SPEC-like averages including mcf/art-class outliers sit in this
  // range); "flat": under a 3x spread across the whole sweep.
  bool l1_low = true;
  for (std::size_t i = 0; i < l1_avg.size(); ++i) {
    if (l1_avg[i] > 0.18) l1_low = false;
    if (cfg.l1_sizes[i] >= 16 * 1024 && l1_avg[i] > 0.12) l1_low = false;
  }
  const bool l1_flat =
      *std::max_element(l1_avg.begin(), l1_avg.end()) <
      3.0 * *std::min_element(l1_avg.begin(), l1_avg.end());
  bool l2_falls = l2_avg.back() < l2_avg.front() * 0.85;
  for (std::size_t i = 1; i < l2_avg.size(); ++i) {
    if (l2_avg[i] > l2_avg[i - 1] * 1.06) l2_falls = false;  // noise band
  }
  std::cout << "L1 local miss rates low across 4K-64K: "
            << (l1_low ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "L1 local miss rates flat (spread < 3x): "
            << (l1_flat ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "L2 local miss rate falls with size: "
            << (l2_falls ? "REPRODUCED" : "NOT REPRODUCED") << "\n";
  return 0;
}
