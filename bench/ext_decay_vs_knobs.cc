// EXT-DECAY — extension beyond the paper: the paper's refs [2]/[5] reduce
// leakage *dynamically* by gating unused lines (cache decay / gated-Vdd);
// the paper itself reduces it *statically* via (Vth, Tox) assignment.  This
// bench composes both on the 16 KB L1: simulate decay to get the live-line
// fraction and the decay-induced extra misses, then combine with the knob
// assignment's leakage under the system AMAT constraint.
//
//   effective leakage = P(knobs) * (live + sleep_ratio * (1 - live))
//   AMAT penalty      = extra L1 misses * L2 path
//
// Expected: the techniques are complementary — decay scales the array's
// residual leakage; knob assignment sets the floor the gating multiplies.
#include <iostream>

#include "core/explorer.h"
#include "sim/suite.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {

/// Leakage surviving in a gated line (virtual-ground transistor off).
constexpr double kSleepRatio = 0.05;

struct DecayPoint {
  std::uint64_t interval = 0;  ///< accesses; 0 = decay off
  double live_fraction = 1.0;
  double l1_miss_rate = 0.0;
};

DecayPoint simulate(std::uint64_t interval) {
  auto trace = sim::make_workload("intcode");
  sim::SetAssociativeCache l1(16 * 1024, 32, 2);
  if (interval > 0) l1.enable_decay(interval);
  sim::TwoLevelHierarchy hier(std::move(l1),
                              sim::SetAssociativeCache(1024 * 1024, 64, 8));
  hier.warmup(*trace, 100'000);
  hier.run(*trace, 400'000);
  DecayPoint p;
  p.interval = interval;
  p.live_fraction = hier.l1().average_live_fraction();
  p.l1_miss_rate = hier.stats().l1_miss_rate();
  return p;
}

}  // namespace

int main() {
  core::Explorer explorer;
  const auto& l1 = explorer.l1_model(16 * 1024);
  const auto eval = opt::structural_evaluator(l1);
  const auto& cfg = explorer.config();

  // Knob-optimized and default-knob L1 leakage at a fixed L1 delay budget.
  const double budget =
      opt::min_access_time(eval, cfg.grid, opt::Scheme::kArrayPeriphery) *
      1.35;
  const auto knobs_opt = opt::optimize_single_cache(
      eval, cfg.grid, opt::Scheme::kArrayPeriphery, budget);
  const double p_default =
      l1.evaluate_uniform(cfg.default_knobs).leakage_w;
  const double p_opt = knobs_opt ? knobs_opt->leakage_w : p_default;

  TextTable t("16KB L1: static knob assignment x dynamic decay (workload: "
              "intcode)");
  t.set_header({"decay interval", "live lines", "L1 miss rate",
                "default knobs [mW]", "paper knobs [mW]", "combined gain"});
  double base_default = 0.0;
  double best_combined = 1e9;
  for (std::uint64_t interval : {0ull, 16384ull, 4096ull, 1024ull, 256ull}) {
    const auto d = simulate(interval);
    const double gated =
        d.live_fraction + kSleepRatio * (1.0 - d.live_fraction);
    const double eff_default = p_default * gated;
    const double eff_opt = p_opt * gated;
    if (interval == 0) base_default = eff_default;
    best_combined = std::min(best_combined, eff_opt);
    t.add_row({interval == 0 ? "off" : std::to_string(interval),
               fmt_fixed(d.live_fraction * 100.0, 1) + "%",
               fmt_fixed(d.l1_miss_rate * 100.0, 2) + "%",
               fmt_fixed(units::watts_to_mw(eff_default), 3),
               fmt_fixed(units::watts_to_mw(eff_opt), 3),
               fmt_fixed(base_default / eff_opt, 1) + "x"});
  }
  std::cout << t << "\n"
            << "reading: decay multiplies whatever leakage the process\n"
            << "knobs leave behind — the two techniques compose almost\n"
            << "multiplicatively (total gain "
            << fmt_fixed(base_default / best_combined, 1)
            << "x here), but only the knob assignment also cuts the\n"
            << "*awake* lines' power, and only decay adapts to workload\n"
            << "idleness.  The cost of decay is the extra misses visible\n"
            << "in the L1 miss-rate column at short intervals.\n";
  return 0;
}
