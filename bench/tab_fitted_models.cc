// TAB-S3 — the Section 3 deliverable itself: per-component fitted
// coefficients of the paper's closed forms for the 16 KB cache,
//
//   P(Vth,Tox)  = A0 + A1*e^(a1*Vth) + A2*e^(a2*Tox)
//   Td(Vth,Tox) = k0 + k1*e^(k3*Vth) + k2*Tox
//
// with goodness-of-fit, plus the sign/shape checks that make the forms
// valid ("a1, a2 < 0", "delay linear in Tox, weakly exponential in Vth").
#include <iomanip>
#include <iostream>
#include <sstream>

#include "cachemodel/fitted_cache.h"
#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {
std::string sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}
}  // namespace

int main() {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);
  std::cout << "characterizing " << m.organization().describe()
            << " on a 13x9 (Vth, Tox) grid and fitting Eq. (1)/(2) per "
               "component...\n\n";
  const auto fits = cachemodel::FittedCacheModel::fit(m);

  TextTable leak("Eq. (1) leakage fits: P = A0 + A1*e^(a1*Vth) + "
                 "A2*e^(a2*Tox)  [W, V, A]");
  leak.set_header({"component", "A0", "A1", "a1 [1/V]", "A2", "a2 [1/A]",
                   "R^2"});
  bool signs_ok = true;
  for (auto kind : cachemodel::kAllComponents) {
    const auto& f = fits.leakage_fit(kind);
    leak.add_row({std::string(cachemodel::component_name(kind)), sci(f.a0()),
                  sci(f.a1()), fmt_fixed(f.rate_vth(), 1), sci(f.a2()),
                  fmt_fixed(f.rate_tox(), 2), fmt_fixed(f.r2(), 4)});
    if (f.rate_vth() >= 0.0 || f.rate_tox() >= 0.0) signs_ok = false;
  }
  std::cout << leak << "\n";

  TextTable delay("Eq. (2) delay fits: Td = k0 + k1*e^(k3*Vth) + k2*Tox  "
                  "[s, V, A]");
  delay.set_header({"component", "k0", "k1", "k3 [1/V]", "k2 [s/A]", "R^2"});
  bool delay_shape_ok = true;
  for (auto kind : cachemodel::kAllComponents) {
    const auto& f = fits.delay_fit(kind);
    delay.add_row({std::string(cachemodel::component_name(kind)), sci(f.k0()),
                   sci(f.k1()), fmt_fixed(f.k3(), 2), sci(f.k2()),
                   fmt_fixed(f.r2(), 4)});
    if (f.k3() <= 0.0 || f.k2() <= 0.0) delay_shape_ok = false;
  }
  std::cout << delay << "\n";

  std::cout << "worst R^2 across all eight fits: "
            << fmt_fixed(fits.worst_r2(), 4) << "\n"
            << "leakage exponents negative in both knobs (paper Eq. 1): "
            << (signs_ok ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "delay exponential in Vth (k3 > 0) and linear in Tox "
               "(k2 > 0) (paper Eq. 2): "
            << (delay_shape_ok ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "closed forms track the structural model (R^2 > 0.95): "
            << (fits.worst_r2() > 0.95 ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n";
  return 0;
}
