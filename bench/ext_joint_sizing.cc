// EXT-JOINT — extension beyond the paper: Section 5 sizes the levels one
// at a time (L2 with L1 fixed, then L1 with L2 fixed).  This bench
// co-optimizes both levels' scheme-II assignments over the full
// (L1 size, L2 size) cross-product and prints the total-leakage landscape,
// checking that the joint optimum agrees with the paper's one-at-a-time
// conclusions (small L1, mid-size L2).
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto& cfg = explorer.config();
  bool small_l1_everywhere = true;
  bool smallest_l2_always = true;
  for (double headroom : {1.02, 1.15}) {
  const double target = explorer.l2_squeeze_target_s(headroom);
  const auto rows = explorer.joint_size_study(target);

  TextTable t("joint L1 x L2 total leakage [mW], AMAT target " +
              fmt_fixed(units::seconds_to_ps(target), 0) + " pS");
  std::vector<std::string> header{"L1 \\ L2"};
  for (auto s : cfg.l2_size_sweep) header.push_back(fmt_bytes(s));
  t.set_header(header);

  const core::Explorer::JointSizingRow* best = nullptr;
  for (std::uint64_t l1 : cfg.l1_size_sweep) {
    std::vector<std::string> row{fmt_bytes(l1)};
    for (std::uint64_t l2 : cfg.l2_size_sweep) {
      const core::Explorer::JointSizingRow* cell = nullptr;
      for (const auto& r : rows) {
        if (r.l1_size_bytes == l1 && r.l2_size_bytes == l2) {
          cell = &r;
          break;
        }
      }
      if (cell && cell->feasible) {
        row.push_back(fmt_fixed(units::watts_to_mw(cell->total_leakage_w), 1));
        if (!best || cell->total_leakage_w < best->total_leakage_w) {
          best = cell;
        }
      } else {
        row.push_back("inf");
      }
    }
    t.add_row(std::move(row));
  }
  std::cout << t << "\n";

  if (best) {
    std::cout << "joint optimum: L1=" << fmt_bytes(best->l1_size_bytes)
              << ", L2=" << fmt_bytes(best->l2_size_bytes) << " at "
              << fmt_fixed(units::watts_to_mw(best->total_leakage_w), 2)
              << " mW (achieved AMAT "
              << fmt_fixed(units::seconds_to_ps(best->amat_s), 0)
              << " pS)\n\n";
    if (best->l1_size_bytes > cfg.l1_size_sweep[1]) {
      small_l1_everywhere = false;
    }
    if (best->l2_size_bytes != cfg.l2_size_sweep.front()) {
      smallest_l2_always = false;
    }
  }
  }  // headroom loop

  std::cout
      << "joint optimum keeps the paper's L1 conclusion (small L1): "
      << (small_l1_everywhere ? "CONFIRMED" : "NOT CONFIRMED") << "\n"
      << "extension finding: under JOINT optimization the smallest L2 "
      << (smallest_l2_always ? "stays" : "does not stay")
      << " optimal even at tight\n"
      << "targets — the optimizer prefers burning speed in the cheap small\n"
      << "L1 over growing (or squeezing) the L2.  The Section 5 'bigger L2\n"
      << "leaks less' regime therefore hinges on the paper's setup of an\n"
      << "L1 FIXED at default knobs; once the L1 knobs join the\n"
      << "optimization, small-everything wins at these AMAT budgets.\n";
  return 0;
}
