// ABL-GATE — ablation of the gate-tunnelling magnitude, the quantity that
// makes this a *total*-leakage paper.  Sweeps the gate current density
// reference and reports (a) the Figure 1 knob-leverage comparison and
// (b) the Figure 2 "1 Tox + 2 Vth vs 2 Tox + 1 Vth" comparison, showing:
//   * with weak gate leakage, Tox stops being the dominant leakage lever
//     (the pre-gate-leakage literature's world, refs [1-7] of the paper);
//   * the tight-AMAT crossover between the two restricted menus (the
//     documented FIG2 deviation) moves with gate-leakage strength.
#include <iostream>

#include "core/explorer.h"
#include "opt/sensitivity.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  TextTable t("gate-leakage ablation (16KB cache / default memory system)");
  t.set_header({"Jg ref [uA/um2]", "Tox leak gap", "Vth leak gap",
                "Tox dominant?", "1T+2V [pJ] @loose", "2T+1V [pJ] @loose",
                "Vth-knob wins?"});

  for (double jg_ua : {2.0, 8.0, 22.0, 60.0}) {
    core::ExperimentConfig cfg;
    cfg.technology.jg_ref_a_per_um2 = jg_ua * 1e-6;
    core::Explorer explorer(cfg);

    // Figure 1 leverage at this gate-leakage strength.
    const auto series = explorer.fig1_fixed_knob(16 * 1024, 9);
    const double tox_gap =
        series[0].points.back().leakage_w / series[1].points.back().leakage_w;
    const double vth_gap =
        series[0].points.front().leakage_w / series[0].points.back().leakage_w;

    // Figure 2 restricted-menu comparison at a loose target.
    const auto system = explorer.default_system();
    const opt::TupleMenuSolver solver(system, cfg.grid);
    const double loose = solver.min_amat_s({2, 2}) * 1.5;
    const auto e12 = solver.best_at({1, 2}, loose);
    const auto e21 = solver.best_at({2, 1}, loose);

    t.add_row({fmt_fixed(jg_ua, 0), fmt_fixed(tox_gap, 1) + "x",
               fmt_fixed(vth_gap, 1) + "x",
               tox_gap > vth_gap ? "yes" : "no",
               e12 ? fmt_fixed(units::joules_to_pj(e12->energy_j), 1) : "-",
               e21 ? fmt_fixed(units::joules_to_pj(e21->energy_j), 1) : "-",
               (e12 && e21 && e12->energy_j < e21->energy_j) ? "yes" : "no"});
  }
  std::cout << t << "\n"
            << "reading: the Vth column is the leakage still recoverable by\n"
            << "raising Vth once Tox is thin.  With weak tunnelling (2\n"
            << "uA/um2) Vth keeps buying 4-5x — the pre-gate-leakage world\n"
            << "of the paper's refs [1-7], where Vth-only optimization\n"
            << "sufficed.  At the paper's calibration the gate floor caps\n"
            << "the Vth knob at ~1.3x, which is exactly why Tox must be\n"
            << "parked high before Vth is used to meet timing.\n";

  // Sensitivity view at the paper's calibration: d ln(leak)/d knob and the
  // per-delay efficiency of each knob at mid-grid.
  core::Explorer explorer;
  const auto eval = opt::structural_evaluator(explorer.l1_model(16 * 1024));
  const auto range = explorer.config().technology.knobs;
  TextTable s("knob sensitivities at calibration (whole 16KB cache)");
  s.set_header({"Vth [V]", "Tox [A]", "dlnP/dVth [1/V]", "dlnP/dTox [1/A]",
                "dlnTd/dVth [1/V]", "dlnTd/dTox [1/A]",
                "leak-per-delay: Vth", "Tox"});
  for (const auto& at : {tech::DeviceKnobs{0.25, 10.5},
                         tech::DeviceKnobs{0.35, 12.0},
                         tech::DeviceKnobs{0.45, 13.5}}) {
    const auto k = opt::cache_sensitivity(eval, at, range);
    s.add_row({fmt_fixed(at.vth_v, 2), fmt_fixed(at.tox_a, 1),
               fmt_fixed(k.leakage_vs_vth, 1), fmt_fixed(k.leakage_vs_tox, 2),
               fmt_fixed(k.delay_vs_vth, 2), fmt_fixed(k.delay_vs_tox, 3),
               fmt_fixed(k.leakage_efficiency_vth(), 1),
               fmt_fixed(k.leakage_efficiency_tox(), 1)});
  }
  std::cout << s;
  return 0;
}
