// ABL-GRID — the paper "chose Vth and Tox to take on discrete values with
// small step size".  How small is small enough?  Compares the paper grid
// (0.05 V / 1 A steps) against a 2x finer grid on the scheme optima and on
// a tuple-menu query, reporting the leakage left on the table by
// discretization.
#include <iostream>

#include "cachemodel/fitted_cache.h"
#include "core/explorer.h"
#include "opt/continuous.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);
  // The discrete optimizers and the continuous (NLP-style, paper ref [10])
  // optimizer are compared on the SAME objective — the fitted closed forms
  // — so differences are purely discretization.
  const auto fits = cachemodel::FittedCacheModel::fit(m);
  const auto eval = opt::fitted_evaluator(fits, m);
  const auto coarse = opt::KnobGrid::paper_default();
  const auto fine = opt::KnobGrid::fine();
  const auto range = explorer.config().technology.knobs;

  TextTable t("grid-resolution ablation: scheme optima, 16KB cache");
  t.set_header({"target [pS]", "scheme", "paper grid [mW]", "fine grid [mW]",
                "continuous [mW]", "paper-grid cost", "fine-grid cost"});
  const double lo = opt::min_access_time(eval, coarse, opt::Scheme::kUniform);
  for (double factor : {1.15, 1.4, 1.8}) {
    const double target = lo * factor;
    for (opt::Scheme s : {opt::Scheme::kPerComponent,
                          opt::Scheme::kArrayPeriphery,
                          opt::Scheme::kUniform}) {
      const auto rc = opt::optimize_single_cache(eval, coarse, s, target);
      const auto rf = opt::optimize_single_cache(eval, fine, s, target);
      const auto ro = opt::optimize_continuous(fits, range, s, target);
      if (!rc || !rf || !ro) continue;
      t.add_row({fmt_fixed(units::seconds_to_ps(target), 0),
                 opt::scheme_name(s),
                 fmt_fixed(units::watts_to_mw(rc->leakage_w), 3),
                 fmt_fixed(units::watts_to_mw(rf->leakage_w), 3),
                 fmt_fixed(units::watts_to_mw(ro->leakage_w), 3),
                 fmt_fixed((rc->leakage_w / ro->leakage_w - 1.0) * 100.0, 1) +
                     "%",
                 fmt_fixed((rf->leakage_w / ro->leakage_w - 1.0) * 100.0, 1) +
                     "%"});
    }
  }
  std::cout
      << t
      << "\nreading: versus the continuous (NLP, paper ref [10]) optimum on\n"
         "the same fitted objective, the paper grid leaves 4-18% on the\n"
         "table under schemes I/II — multiple independent pairs straddle\n"
         "the continuous optimum — while scheme III pays 35-50% because a\n"
         "single discrete pair cannot interpolate.  Discretization thus\n"
         "*amplifies* the paper's scheme ordering rather than creating it.\n";
  return 0;
}
