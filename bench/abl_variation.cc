// ABL-VAR — process-variation ablation.  The paper's numbers (and our
// optimizers) are nominal; leakage is exponential in both knobs, so global
// variation skews the shipped distribution upward and eats into timing.
// This bench Monte-Carlos the 16 KB scheme-II optimum and shows (a) the
// nominal-vs-mean-vs-p95 leakage gap and (b) how much delay margin must be
// reserved at optimization time to reach a target timing yield.
#include <iostream>

#include "cachemodel/variation.h"
#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);
  const auto eval = opt::structural_evaluator(m);
  const auto& grid = explorer.config().grid;
  const double target =
      opt::min_access_time(eval, grid, opt::Scheme::kArrayPeriphery) * 1.35;

  cachemodel::VariationParams var;
  var.samples = 800;

  TextTable t("timing-margin study at sigma(Vth)=20mV, sigma(Tox)=0.15A "
              "(800 samples)");
  t.set_header({"optimized for", "nominal leak [mW]", "mean leak [mW]",
                "p95 leak [mW]", "timing yield @" +
                    fmt_fixed(units::seconds_to_ps(target), 0) + "pS"});
  double unmargined_yield = 0.0;
  double margined_yield = 0.0;
  for (double margin : {1.00, 0.95, 0.90}) {
    const auto opt = opt::optimize_single_cache(
        eval, grid, opt::Scheme::kArrayPeriphery, target * margin);
    if (!opt) continue;
    const auto mc =
        cachemodel::monte_carlo(m, opt->assignment, var, target);
    if (margin == 1.00) unmargined_yield = mc.timing_yield;
    if (margin == 0.90) margined_yield = mc.timing_yield;
    t.add_row({fmt_fixed(margin * 100.0, 0) + "% of target",
               fmt_fixed(units::watts_to_mw(opt->leakage_w), 3),
               fmt_fixed(units::watts_to_mw(mc.leakage_w.mean), 3),
               fmt_fixed(units::watts_to_mw(mc.leakage_w.p95), 3),
               fmt_fixed(mc.timing_yield * 100.0, 1) + "%"});
  }
  std::cout << t << "\n"
            << "margin buys yield: "
            << ((margined_yield > unmargined_yield) ? "CONFIRMED"
                                                    : "NOT CONFIRMED")
            << " (" << fmt_fixed(unmargined_yield * 100.0, 1) << "% -> "
            << fmt_fixed(margined_yield * 100.0, 1) << "%)\n"
            << "reading: an optimizer that stops at the constraint ships\n"
            << "well below full timing yield (every die on the slow side of\n"
            << "its residual slack fails); the leakage skew (mean and p95\n"
            << "above nominal) is the\n"
            << "price of exponential sensitivity.  Both effects sit on top\n"
            << "of everything the paper reports and motivate the margined\n"
            << "targets used in the table benches.\n";
  return 0;
}
