// TAB-DELAY — access-time decomposition: where the critical path goes,
// per component and per array stage, across the cache sizes the paper
// sweeps.  Supports the Section 3 four-component model: the cell array
// dominates, and its share grows with capacity (longer bitlines), which is
// why the array knob carries delay weight and not just leakage weight.
#include <iostream>
#include <memory>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const tech::DeviceKnobs knobs = explorer.config().default_knobs;

  TextTable t("access-time breakdown at default knobs (0.35V / 12A) [pS]");
  t.set_header({"cache", "addr drv", "decoder", "array (wl+bl+sa)",
                "data drv", "total", "array share"});
  bool array_leads_l1 = true;
  bool wires_lead_big_l2 = true;
  struct Case {
    std::uint64_t size;
    bool is_l2;
  };
  for (const auto& c :
       {Case{4 * 1024, false}, Case{16 * 1024, false}, Case{64 * 1024, false},
        Case{256 * 1024, true}, Case{1024 * 1024, true},
        Case{4096 * 1024, true}}) {
    const auto& m =
        c.is_l2 ? explorer.l2_model(c.size) : explorer.l1_model(c.size);
    const auto r = m.evaluate_uniform(knobs);
    auto d = [&](cachemodel::ComponentKind k) {
      return units::seconds_to_ps(
          r.per_component[static_cast<std::size_t>(k)].delay_s);
    };
    const double array = d(cachemodel::ComponentKind::kCellArray);
    const double wires = d(cachemodel::ComponentKind::kAddressDrivers) +
                         d(cachemodel::ComponentKind::kDataDrivers);
    const double total = units::seconds_to_ps(r.access_time_s);
    const double share = array / total;
    t.add_row({fmt_bytes(c.size),
               fmt_fixed(d(cachemodel::ComponentKind::kAddressDrivers), 1),
               fmt_fixed(d(cachemodel::ComponentKind::kDecoder), 1),
               fmt_fixed(array, 1),
               fmt_fixed(d(cachemodel::ComponentKind::kDataDrivers), 1),
               fmt_fixed(total, 1), fmt_fixed(share * 100.0, 1) + "%"});
    if (!c.is_l2 && share < 0.35) array_leads_l1 = false;
    if (c.is_l2 && c.size >= 1024 * 1024 && wires < array) {
      wires_lead_big_l2 = false;
    }
  }
  std::cout << t << "\n";

  // The array's internal stages for the paper's 16 KB design.
  tech::DeviceModel dev(explorer.config().technology);
  const auto org = cachemodel::l1_organization(16 * 1024, dev);
  const cachemodel::ArrayModel array(org, dev);
  const double cal = dev.params().delay_calibration;
  TextTable s("16KB array stage breakdown [pS]");
  s.set_header({"stage", "delay"});
  s.add_row({"wordline",
             fmt_fixed(units::seconds_to_ps(array.wordline_delay_s(knobs) *
                                            cal), 1)});
  s.add_row({"bitline discharge",
             fmt_fixed(units::seconds_to_ps(array.bitline_delay_s(knobs) *
                                            cal), 1)});
  s.add_row({"sense amplifier",
             fmt_fixed(units::seconds_to_ps(array.senseamp_delay_s(knobs) *
                                            cal), 1)});
  std::cout << s << "\n"
            << "cell array is the largest delay component in the L1 sizes: "
            << (array_leads_l1 ? "CONFIRMED" : "NOT CONFIRMED") << "\n"
            << "bus drivers overtake the array in megabyte L2s (wire-\n"
            << "dominated access): "
            << (wires_lead_big_l2 ? "CONFIRMED" : "NOT CONFIRMED") << "\n"
            << "reading: this is why the paper's two-pair Scheme II is so\n"
            << "effective for L2s — the delay lives in the periphery, where\n"
            << "aggressive knobs are cheap, while the leakage lives in the\n"
            << "array, where conservative knobs are free.\n";
  return 0;
}
