// FIG1 — reproduces Figure 1 of the paper: leakage power (mW) vs access
// time (pS) for a 16 KB cache, with four curves: Tox fixed at 10 A / 14 A
// (Vth swept 0.2-0.5 V) and Vth fixed at 200 mV / 400 mV (Tox swept
// 10-14 A).  Expected shape (paper Section 4): the fixed-Tox curves span a
// wide delay range (Vth is the better delay knob); the two Tox levels are
// separated by a large leakage gap (Tox is the bigger leakage lever).
#include <iostream>

#include "core/explorer.h"
#include "util/ascii_chart.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const std::uint64_t cache_size = 16 * 1024;
  const auto series = explorer.fig1_fixed_knob(cache_size);

  std::cout << "FIG1: 16KB cache, leakage vs access time "
               "(uniform Vth/Tox assignment)\n\n";
  for (const auto& s : series) {
    TextTable t("Figure 1 series: " + s.label +
                (s.vth_fixed ? "  (Tox swept 10-14A)"
                             : "  (Vth swept 0.2-0.5V)"));
    t.set_header({s.vth_fixed ? "Tox [A]" : "Vth [V]", "access time [pS]",
                  "leakage [mW]"});
    for (const auto& p : s.points) {
      t.add_row({fmt_fixed(p.swept_value, s.vth_fixed ? 1 : 3),
                 fmt_fixed(units::seconds_to_ps(p.access_time_s), 1),
                 fmt_fixed(units::watts_to_mw(p.leakage_w), 3)});
    }
    std::cout << t << "\n";
  }

  // The figure itself, rendered to the terminal.
  AsciiChart chart(72, 22);
  chart.set_title("Figure 1: 16KB cache leakage vs access time");
  chart.set_x_label("access time [pS]");
  chart.set_y_label("leakage [mW]");
  chart.set_log_y(true);
  for (const auto& s : series) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& p : s.points) {
      xs.push_back(units::seconds_to_ps(p.access_time_s));
      ys.push_back(units::watts_to_mw(p.leakage_w));
    }
    chart.add_series(s.label, std::move(xs), std::move(ys));
  }
  std::cout << chart.render() << "\n";

  // The two headline observations, computed from the series.
  const auto& tox10 = series[0];
  const auto& tox14 = series[1];
  const auto& vth02 = series[2];
  const double vth_delay_span =
      tox10.points.back().access_time_s / tox10.points.front().access_time_s;
  const double tox_delay_span =
      vth02.points.back().access_time_s / vth02.points.front().access_time_s;
  const double tox_leak_gap =
      tox10.points.back().leakage_w / tox14.points.back().leakage_w;
  const double vth_leak_gap =
      tox10.points.front().leakage_w / tox10.points.back().leakage_w;
  std::cout << "delay span sweeping Vth (Tox=10A fixed): "
            << fmt_fixed(vth_delay_span, 2) << "x\n"
            << "delay span sweeping Tox (Vth=0.2V fixed): "
            << fmt_fixed(tox_delay_span, 2) << "x\n"
            << "leakage gap Tox 10A vs 14A (at Vth=0.5V): "
            << fmt_fixed(tox_leak_gap, 1) << "x\n"
            << "leakage gap Vth 0.2V vs 0.5V (at Tox=10A): "
            << fmt_fixed(vth_leak_gap, 1) << "x\n"
            << "\npaper's conclusion holds iff Vth delay span > Tox delay "
               "span and the Tox leakage gap > Vth leakage gap:\n"
            << ((vth_delay_span > tox_delay_span && tox_leak_gap > vth_leak_gap)
                    ? "REPRODUCED"
                    : "NOT REPRODUCED")
            << "\n";
  return 0;
}
