// TAB-L1 — reproduces the Section 5 L1 experiment: L2 fixed (scheme-II
// optimized once for the default configuration); sweep L1 4K-64K and
// optimize each L1 under scheme II to meet the AMAT target.  Expected shape
// (paper): local L1 miss rates are low and vary little over 4K-64K, so the
// smallest L1 — less leakage AND faster — minimizes total leakage.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const double target = explorer.config().amat_target_s;
  const auto rows = explorer.l1_size_sweep(target);

  TextTable t("Section 5 / L1 size sweep, AMAT target " +
              fmt_fixed(units::seconds_to_ps(target), 0) + " pS, L2 = " +
              fmt_bytes(explorer.config().l2_size_bytes) + " (fixed)");
  t.set_header({"L1 size", "local mL1", "L1 leakage [mW]",
                "total leakage [mW]", "achieved AMAT [pS]"});
  const core::SizeSweepRow* best = nullptr;
  double miss_min = 1.0;
  double miss_max = 0.0;
  for (const auto& r : rows) {
    if (!r.feasible) {
      t.add_row({fmt_bytes(r.size_bytes), fmt_fixed(r.miss_rate, 4),
                 "infeasible", "-", "-"});
      continue;
    }
    t.add_row({fmt_bytes(r.size_bytes), fmt_fixed(r.miss_rate, 4),
               fmt_fixed(units::watts_to_mw(r.level_leakage_w), 3),
               fmt_fixed(units::watts_to_mw(r.total_leakage_w), 2),
               fmt_fixed(units::seconds_to_ps(r.amat_s), 1)});
    miss_min = std::min(miss_min, r.miss_rate);
    miss_max = std::max(miss_max, r.miss_rate);
    if (!best || r.total_leakage_w < best->total_leakage_w) best = &r;
  }
  std::cout << t << "\n";

  if (best) {
    std::cout << "total-leakage optimum: " << fmt_bytes(best->size_bytes)
              << "\n"
              << "smallest L1 is the optimum: "
              << ((best->size_bytes == rows.front().size_bytes)
                      ? "REPRODUCED"
                      : "NOT REPRODUCED")
              << "\n";
  }
  std::cout << "L1 local miss rates low (<10%) and flat (max/min < 3x): "
            << ((miss_max < 0.10 && miss_max / miss_min < 3.0)
                    ? "REPRODUCED"
                    : "NOT REPRODUCED")
            << "\n";
  return 0;
}
