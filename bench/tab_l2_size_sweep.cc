// TAB-L2A — reproduces the first Section 5 L2 experiment: L1 fixed at
// 16 KB with default knobs; sweep the L2 size and optimize a single
// (Vth, Tox) pair for the whole L2 under the system AMAT constraint.
// Expected shape (paper): "generally the bigger L2 consumes less leakage
// power than smaller ones under the same delay constraint ... nevertheless,
// having the largest available L2 does not always yield the best leakage."
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto& cfg = explorer.config();

  bool any_bigger_wins = false;
  bool largest_not_best = false;

  for (double headroom : {1.05, 1.15, 1.30}) {
    const double target = explorer.l2_squeeze_target_s(headroom);
    const double target_ps = units::seconds_to_ps(target);
    const auto rows = explorer.l2_size_sweep(opt::Scheme::kUniform, target);

    std::ostringstream title;
    title << "Section 5 / L2 (one pair per L2): AMAT target "
          << fmt_fixed(target_ps, 0) << " pS, L1 = "
          << fmt_bytes(cfg.l1_size_bytes) << " @ "
          << std::fixed << std::setprecision(2) << cfg.default_knobs.vth_v
          << "V/" << std::setprecision(0) << cfg.default_knobs.tox_a << "A";
    TextTable t(title.str());
    t.set_header({"L2 size", "local mL2", "L2 Vth/Tox", "L2 leakage [mW]",
                  "total leakage [mW]", "achieved AMAT [pS]"});
    const core::SizeSweepRow* best = nullptr;
    for (const auto& r : rows) {
      if (!r.feasible) {
        t.add_row({fmt_bytes(r.size_bytes), fmt_fixed(r.miss_rate, 3),
                   "infeasible", "-", "-", "-"});
        continue;
      }
      const auto& k = r.result.assignment.array();
      std::ostringstream knobs;
      knobs << std::fixed << std::setprecision(2) << k.vth_v << "V/"
            << std::setprecision(0) << k.tox_a << "A";
      t.add_row({fmt_bytes(r.size_bytes), fmt_fixed(r.miss_rate, 3),
                 knobs.str(),
                 fmt_fixed(units::watts_to_mw(r.level_leakage_w), 2),
                 fmt_fixed(units::watts_to_mw(r.total_leakage_w), 2),
                 fmt_fixed(units::seconds_to_ps(r.amat_s), 1)});
      if (best == nullptr || r.level_leakage_w < best->level_leakage_w) {
        best = &r;
      }
    }
    std::cout << t;
    if (best != nullptr) {
      std::cout << "optimum at this target: " << fmt_bytes(best->size_bytes)
                << "\n\n";
      // "Bigger L2 leaks less": some feasible size is beaten by a larger one.
      for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        if (rows[i].feasible && rows[i + 1].feasible &&
            rows[i + 1].level_leakage_w < rows[i].level_leakage_w) {
          any_bigger_wins = true;
        }
      }
      if (best->size_bytes != rows.back().size_bytes) {
        largest_not_best = true;
      }
    }
  }

  std::cout << "bigger L2 reduces leakage somewhere in the sweep: "
            << (any_bigger_wins ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "largest L2 is not always the best: "
            << (largest_not_best ? "REPRODUCED" : "NOT REPRODUCED") << "\n";
  return 0;
}
