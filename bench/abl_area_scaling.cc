// ABL-AREA — ablation of the Section 2 area coupling: "the impact of Tox
// scaling on the cell area must be taken into account, as the cell will
// grow in both horizontal and vertical dimensions."  Compares the 16 KB
// Figure 1 window and the scheme-II optima with the coupling enabled
// (default) vs frozen geometry, and quantifies the bus-length
// linearization error of the independent-component view.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  TextTable t("area-scaling ablation, 16KB cache");
  t.set_header({"area scaling", "fast corner [pS]", "slow corner [pS]",
                "slow/fast", "area @14A vs @10A", "schemeII leak @1.4ns [mW]"});
  for (bool enabled : {true, false}) {
    core::ExperimentConfig cfg;
    cfg.technology.area_scaling_enabled = enabled;
    core::Explorer explorer(cfg);
    const auto& m = explorer.l1_model(16 * 1024);
    const auto fast = m.evaluate_uniform({0.2, 10.0});
    const auto slow = m.evaluate_uniform({0.5, 14.0});
    const double area_ratio = m.evaluate_uniform({0.35, 14.0}).area_um2 /
                              m.evaluate_uniform({0.35, 10.0}).area_um2;
    const auto best = opt::optimize_single_cache(
        opt::structural_evaluator(m), cfg.grid, opt::Scheme::kArrayPeriphery,
        1.4e-9);
    t.add_row({enabled ? "ON (paper)" : "OFF",
               fmt_fixed(units::seconds_to_ps(fast.access_time_s), 1),
               fmt_fixed(units::seconds_to_ps(slow.access_time_s), 1),
               fmt_fixed(slow.access_time_s / fast.access_time_s, 2),
               fmt_fixed(area_ratio, 2) + "x",
               best ? fmt_fixed(units::watts_to_mw(best->leakage_w), 3)
                    : "infeasible"});
  }
  std::cout << t << "\n"
            << "with the coupling OFF, thick Tox no longer costs area or\n"
            << "wire length, so the delay penalty of conservative Tox\n"
            << "shrinks — the paper's insistence on modelling cell growth\n"
            << "is what keeps Tox from being a free lunch.\n\n";

  // Linearization error: the optimizers use nominal-Tox bus geometry
  // (independent components); final numbers can be recomputed with the
  // exact array-Tox coupling.  Quantify the gap on optimized designs.
  core::Explorer explorer;
  TextTable e("independent-component vs exact coupling on scheme-II optima");
  e.set_header({"cache", "delay err", "leakage err"});
  for (std::uint64_t size : {16ull * 1024, 64ull * 1024, 1024ull * 1024}) {
    const bool is_l2 = size >= 256 * 1024;
    const auto& m =
        is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
    const auto eval = opt::structural_evaluator(m);
    const double lo =
        opt::min_access_time(eval, explorer.config().grid,
                             opt::Scheme::kArrayPeriphery);
    const auto best = opt::optimize_single_cache(
        eval, explorer.config().grid, opt::Scheme::kArrayPeriphery, lo * 1.3);
    if (!best) continue;
    const auto nominal =
        m.evaluate(best->assignment, cachemodel::AreaCoupling::kNominal);
    const auto exact =
        m.evaluate(best->assignment, cachemodel::AreaCoupling::kArrayTox);
    e.add_row({fmt_bytes(size),
               fmt_fixed((exact.access_time_s / nominal.access_time_s - 1.0) *
                             100.0,
                         2) +
                   "%",
               fmt_fixed((exact.leakage_w / nominal.leakage_w - 1.0) * 100.0,
                         2) +
                   "%"});
  }
  std::cout << e
            << "the small gap justifies the paper's additive Section 3\n"
            << "model (and our Pareto-DP optimizers built on it).\n";
  return 0;
}
