// TAB-INTRO — the paper's motivating premise (Section 1): "with aggressive
// Tox scaling, gate leakage power can potentially surpass the subthreshold
// leakage at low Tox", and the cell array is where the leakage lives.
// Prints the subthreshold/gate split of a 16 KB cache across the knob
// plane and the per-component breakdown at the default corner.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);

  TextTable t("16KB cache: total leakage split by mechanism [mW]");
  t.set_header({"Vth [V]", "Tox [A]", "subthreshold", "gate", "total",
                "gate share", "gate > sub?"});
  bool gate_dominates_somewhere = false;
  bool sub_dominates_somewhere = false;
  for (double vth : {0.20, 0.35, 0.50}) {
    for (double tox : {10.0, 12.0, 14.0}) {
      const auto r = m.evaluate_uniform({vth, tox});
      const bool gate_wins = r.leakage_gate_w > r.leakage_sub_w;
      gate_dominates_somewhere |= gate_wins;
      sub_dominates_somewhere |= !gate_wins;
      t.add_row({fmt_fixed(vth, 2), fmt_fixed(tox, 0),
                 fmt_fixed(units::watts_to_mw(r.leakage_sub_w), 3),
                 fmt_fixed(units::watts_to_mw(r.leakage_gate_w), 3),
                 fmt_fixed(units::watts_to_mw(r.leakage_w), 3),
                 fmt_fixed(100.0 * r.leakage_gate_w / r.leakage_w, 1) + "%",
                 gate_wins ? "yes" : "no"});
    }
  }
  std::cout << t << "\n";

  // Per-component view at the default corner: the array is the leaker.
  const auto r = m.evaluate_uniform(explorer.config().default_knobs);
  TextTable c("per-component breakdown at default knobs (0.35V / 12A)");
  c.set_header({"component", "sub [mW]", "gate [mW]", "total [mW]",
                "share of cache"});
  for (auto kind : cachemodel::kAllComponents) {
    const auto& cm = r.per_component[static_cast<std::size_t>(kind)];
    c.add_row({std::string(cachemodel::component_name(kind)),
               fmt_fixed(units::watts_to_mw(cm.leakage_sub_w), 4),
               fmt_fixed(units::watts_to_mw(cm.leakage_gate_w), 4),
               fmt_fixed(units::watts_to_mw(cm.leakage_w), 4),
               fmt_fixed(100.0 * cm.leakage_w / r.leakage_w, 1) + "%"});
  }
  std::cout << c << "\n";

  const auto& array = r.per_component[static_cast<std::size_t>(
      cachemodel::ComponentKind::kCellArray)];
  std::cout << "gate leakage surpasses subthreshold at low Tox: "
            << (gate_dominates_somewhere ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n"
            << "subthreshold still dominates at thick Tox / low Vth: "
            << (sub_dominates_somewhere ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n"
            << "cell array is the dominant leaker (>60% of cache): "
            << (array.leakage_w > 0.6 * r.leakage_w ? "REPRODUCED"
                                                    : "NOT REPRODUCED")
            << "\n";
  return 0;
}
