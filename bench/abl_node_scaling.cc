// ABL-NODE — technology-scaling ablation.  The paper's introduction claims
// the leakage fraction will grow in "future processor generations" and
// that gate tunnelling is what changes the game at 65 nm.  This bench runs
// the 16 KB study at a 90 nm-flavoured node (the refs [1-7] world), the
// paper's 65 nm node, and a projected pre-high-k 45 nm node, tracking:
//   * the sub/gate leakage split at each node's mid knobs,
//   * each knob's leakage leverage (the Figure 1 comparison), and
//   * the scheme-II optimization win over the uniform scheme.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  struct Node {
    const char* name;
    tech::TechnologyParams params;
  };
  const Node nodes[] = {
      {"90nm", tech::node90()},
      {"65nm (paper)", tech::bptm65()},
      {"45nm (proj.)", tech::node45()},
  };

  TextTable t("16KB cache across technology nodes (mid-window knobs)");
  t.set_header({"node", "Tox window [A]", "leak [mW]", "gate share",
                "Vth leak gap", "Tox leak gap", "schemeII/III win"});
  double prev_gate_share = -1.0;
  bool gate_share_grows = true;
  for (const auto& node : nodes) {
    core::ExperimentConfig cfg;
    cfg.technology = node.params;
    // Knob grid must track the node's window.
    cfg.grid.vth_values = {0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50};
    cfg.grid.tox_values.clear();
    for (int i = 0; i < 5; ++i) {
      cfg.grid.tox_values.push_back(
          node.params.knobs.tox_min_a +
          (node.params.knobs.tox_max_a - node.params.knobs.tox_min_a) * i /
              4.0);
    }
    core::Explorer explorer(cfg);
    const auto& m = explorer.l1_model(16 * 1024);

    const tech::DeviceKnobs mid{0.35, node.params.tox_nominal_a};
    const auto r = m.evaluate_uniform(mid);
    const double gate_share = r.leakage_gate_w / r.leakage_w;

    // Knob leverage at the node's own window.
    const auto thin_hi_vth = m.evaluate_uniform(
        {0.50, node.params.knobs.tox_min_a});
    const auto thin_lo_vth = m.evaluate_uniform(
        {0.20, node.params.knobs.tox_min_a});
    const auto thick_hi_vth = m.evaluate_uniform(
        {0.50, node.params.knobs.tox_max_a});
    const double vth_gap = thin_lo_vth.leakage_w / thin_hi_vth.leakage_w;
    const double tox_gap = thin_hi_vth.leakage_w / thick_hi_vth.leakage_w;

    // Scheme II vs III at a mid target.
    const auto eval = opt::structural_evaluator(m);
    const double lo =
        opt::min_access_time(eval, cfg.grid, opt::Scheme::kUniform);
    const auto s2 = opt::optimize_single_cache(
        eval, cfg.grid, opt::Scheme::kArrayPeriphery, lo * 1.3);
    const auto s3 = opt::optimize_single_cache(eval, cfg.grid,
                                               opt::Scheme::kUniform, lo * 1.3);
    std::string win = "-";
    if (s2 && s3) win = fmt_fixed(s3->leakage_w / s2->leakage_w, 2) + "x";

    t.add_row({node.name,
               fmt_fixed(node.params.knobs.tox_min_a, 0) + "-" +
                   fmt_fixed(node.params.knobs.tox_max_a, 0),
               fmt_fixed(units::watts_to_mw(r.leakage_w), 3),
               fmt_fixed(gate_share * 100.0, 1) + "%",
               fmt_fixed(vth_gap, 1) + "x", fmt_fixed(tox_gap, 1) + "x",
               win});
    if (gate_share < prev_gate_share) gate_share_grows = false;
    prev_gate_share = gate_share;
  }
  std::cout << t << "\n"
            << "gate-leakage share grows monotonically with scaling: "
            << (gate_share_grows ? "CONFIRMED" : "NOT CONFIRMED") << "\n"
            << "reading: follow the Vth-gap column — the leakage still\n"
            << "recoverable by raising Vth once Tox sits at the node's thin\n"
            << "end.  At 90 nm Vth-only optimization recovers 4x (the refs\n"
            << "[1-7] world); at the paper's 65 nm the tunnelling floor\n"
            << "caps it at ~1.3x, and at pre-high-k 45 nm at ~1.1x while\n"
            << "absolute leakage grows 10x per node — the paper's\n"
            << "total-leakage framing becomes mandatory, exactly its\n"
            << "introduction's forecast (history answered the 45 nm\n"
            << "projection with high-k/metal-gate).\n";
  return 0;
}
