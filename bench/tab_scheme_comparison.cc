// TAB-S4 — reproduces the Section 4 scheme study: minimum leakage of a
// 16 KB cache under delay constraints for the three Vth/Tox assignment
// schemes.  Expected ordering (paper): Scheme III (uniform) worst, Scheme I
// (per-component) best, Scheme II (array/periphery) within a few percent of
// Scheme I — and the optimizer always gives the cell array high Vth and
// thick Tox while the periphery gets fast values.
//
// Runs through the public nanocache::api facade: the same scheme sweep a
// batch request would execute.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/explorer.h"
#include "nanocache/api.h"
#include "util/table.h"

using namespace nanocache;

namespace {

std::string knobs_str(const api::Knobs& k) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << k.vth_v << "V/"
     << std::setprecision(0) << k.tox_a << "A";
  return os.str();
}

std::string leak_cell(const api::OptimizedCache& r) {
  if (!r.feasible) return "infeasible";
  return fmt_fixed(r.leakage_mw, 3);
}

}  // namespace

int main() {
  const auto service = api::Service::create({});
  if (!service) {
    std::cerr << "service: " << service.error().message << "\n";
    return 1;
  }

  api::SweepRequest request;
  request.kind = api::SweepKind::kSchemes;
  request.target.size_bytes = 16 * 1024;
  request.ladder_steps = 9;
  const auto sweep = (*service)->sweep(request);
  if (!sweep) {
    std::cerr << "sweep: " << sweep.error().message << "\n";
    return 1;
  }
  const auto& rows = sweep->schemes;

  TextTable t("Section 4: optimal leakage [mW] by scheme, 16KB cache");
  t.set_header({"delay target [pS]", "scheme I", "scheme II", "scheme III",
                "II/I", "III/I"});
  bool ordering_holds = true;
  for (const auto& row : rows) {
    std::string r21 = "-";
    std::string r31 = "-";
    if (row.scheme1.feasible && row.scheme2.feasible && row.scheme3.feasible) {
      r21 = fmt_fixed(row.scheme2.leakage_mw / row.scheme1.leakage_mw, 3);
      r31 = fmt_fixed(row.scheme3.leakage_mw / row.scheme1.leakage_mw, 3);
      // Allow floating-point slack; II and III can only be >= I.
      if (row.scheme2.leakage_mw < row.scheme1.leakage_mw * 0.999 ||
          row.scheme3.leakage_mw < row.scheme2.leakage_mw * 0.999) {
        ordering_holds = false;
      }
    }
    t.add_row({fmt_fixed(row.delay_target_ps, 0), leak_cell(row.scheme1),
               leak_cell(row.scheme2), leak_cell(row.scheme3), r21, r31});
  }
  std::cout << t << "\n";

  // Show the chosen assignments at a mid-ladder target.  The facade lists
  // components in the paper's fixed order, cell array first.
  const auto& mid = rows[rows.size() / 2];
  if (mid.scheme1.feasible) {
    TextTable a("Scheme I assignment at " + fmt_fixed(mid.delay_target_ps, 0) +
                " pS target");
    a.set_header({"component", "Vth/Tox"});
    for (const auto& c : mid.scheme1.assignment) {
      a.add_row({c.component, knobs_str(c.knobs)});
    }
    std::cout << a << "\n";
    const auto& arr = mid.scheme1.assignment.front().knobs;  // cell array
    const auto& dec = mid.scheme1.assignment[1].knobs;       // decoder
    std::cout << "array gets conservative knobs vs periphery: "
              << ((arr.vth_v >= dec.vth_v && arr.tox_a >= dec.tox_a)
                      ? "REPRODUCED"
                      : "NOT REPRODUCED")
              << "\n";
  }
  std::cout << "scheme ordering I <= II <= III: "
            << (ordering_holds ? "REPRODUCED" : "NOT REPRODUCED") << "\n";

  // Ablation: the paper's insight that Tox should sit at its conservative
  // (thick) end with Vth trimming delay.  Count how often the scheme-II
  // optimizer picks the thickest Tox for the array.
  const double thickest =
      (*service)->explorer().config().grid.tox_values.back();
  int thick = 0;
  int total = 0;
  for (const auto& row : rows) {
    if (!row.scheme2.feasible) continue;
    ++total;
    if (row.scheme2.assignment.front().knobs.tox_a >= thickest - 1e-9) {
      ++thick;
    }
  }
  std::cout << "scheme II picks thickest Tox for the array in " << thick
            << "/" << total << " feasible targets\n";
  return 0;
}
