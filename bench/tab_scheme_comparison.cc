// TAB-S4 — reproduces the Section 4 scheme study: minimum leakage of a
// 16 KB cache under delay constraints for the three Vth/Tox assignment
// schemes.  Expected ordering (paper): Scheme III (uniform) worst, Scheme I
// (per-component) best, Scheme II (array/periphery) within a few percent of
// Scheme I — and the optimizer always gives the cell array high Vth and
// thick Tox while the periphery gets fast values.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {

std::string knobs_str(const tech::DeviceKnobs& k) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << k.vth_v << "V/"
     << std::setprecision(0) << k.tox_a << "A";
  return os.str();
}

std::string leak_cell(const opt::OptOutcome<opt::SchemeResult>& r) {
  if (!r) return "infeasible";
  return fmt_fixed(units::watts_to_mw(r->leakage_w), 3);
}

}  // namespace

int main() {
  core::Explorer explorer;
  const std::uint64_t cache_size = 16 * 1024;
  const auto ladder = explorer.delay_ladder(cache_size, 9);
  const auto rows = explorer.scheme_comparison(cache_size, ladder);

  TextTable t("Section 4: optimal leakage [mW] by scheme, 16KB cache");
  t.set_header({"delay target [pS]", "scheme I", "scheme II", "scheme III",
                "II/I", "III/I"});
  bool ordering_holds = true;
  for (const auto& row : rows) {
    std::string r21 = "-";
    std::string r31 = "-";
    if (row.scheme1 && row.scheme2 && row.scheme3) {
      r21 = fmt_fixed(row.scheme2->leakage_w / row.scheme1->leakage_w, 3);
      r31 = fmt_fixed(row.scheme3->leakage_w / row.scheme1->leakage_w, 3);
      // Allow floating-point slack; II and III can only be >= I.
      if (row.scheme2->leakage_w < row.scheme1->leakage_w * 0.999 ||
          row.scheme3->leakage_w < row.scheme2->leakage_w * 0.999) {
        ordering_holds = false;
      }
    }
    t.add_row({fmt_fixed(units::seconds_to_ps(row.delay_target_s), 0),
               leak_cell(row.scheme1), leak_cell(row.scheme2),
               leak_cell(row.scheme3), r21, r31});
  }
  std::cout << t << "\n";

  // Show the chosen assignments at a mid-ladder target.
  const auto& mid = rows[rows.size() / 2];
  if (mid.scheme1) {
    TextTable a("Scheme I assignment at " +
                fmt_fixed(units::seconds_to_ps(mid.delay_target_s), 0) +
                " pS target");
    a.set_header({"component", "Vth/Tox"});
    for (auto kind : cachemodel::kAllComponents) {
      a.add_row({std::string(cachemodel::component_name(kind)),
                 knobs_str(mid.scheme1->assignment.get(kind))});
    }
    std::cout << a << "\n";
    const auto& arr =
        mid.scheme1->assignment.get(cachemodel::ComponentKind::kCellArray);
    const auto& dec =
        mid.scheme1->assignment.get(cachemodel::ComponentKind::kDecoder);
    std::cout << "array gets conservative knobs vs periphery: "
              << ((arr.vth_v >= dec.vth_v && arr.tox_a >= dec.tox_a)
                      ? "REPRODUCED"
                      : "NOT REPRODUCED")
              << "\n";
  }
  std::cout << "scheme ordering I <= II <= III: "
            << (ordering_holds ? "REPRODUCED" : "NOT REPRODUCED") << "\n";

  // Ablation: the paper's insight that Tox should sit at its conservative
  // (thick) end with Vth trimming delay.  Count how often the scheme-II
  // optimizer picks the thickest Tox for the array.
  int thick = 0;
  int total = 0;
  for (const auto& row : rows) {
    if (!row.scheme2) continue;
    ++total;
    const auto& arr =
        row.scheme2->assignment.get(cachemodel::ComponentKind::kCellArray);
    if (arr.tox_a >=
        explorer.config().grid.tox_values.back() - 1e-9) {
      ++thick;
    }
  }
  std::cout << "scheme II picks thickest Tox for the array in " << thick
            << "/" << total << " feasible targets\n";
  return 0;
}
