// FIG2 — reproduces Figure 2 of the paper: total energy (pJ) vs AMAT (pS)
// for the entire L1 + L2 + main-memory system, with process menus limited
// to {2Tox+2Vth, 2Tox+3Vth, 3Tox+2Vth, 2Tox+1Vth, 1Tox+2Vth}.  Expected
// shape (paper): 2Tox+3Vth best but nearly tied with 2Tox+2Vth (so dual/dual
// suffices), and a single-Tox/dual-Vth process beats dual-Tox/single-Vth
// (Vth is the more effective knob) over the main AMAT range.
#include <iostream>

#include "core/explorer.h"
#include "util/ascii_chart.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto specs = core::Explorer::default_fig2_specs();

  // Frontier series (the figure's five curves).
  const auto series = explorer.fig2_tuple_frontiers(specs);
  for (const auto& s : series) {
    TextTable t("Figure 2 frontier: " + s.label);
    t.set_header({"AMAT [pS]", "total energy [pJ]", "leakage [mW]"});
    // Thin the print to ~12 rows; the full frontier backs the table below.
    const std::size_t stride = std::max<std::size_t>(1, s.points.size() / 12);
    for (std::size_t i = 0; i < s.points.size(); i += stride) {
      const auto& p = s.points[i];
      t.add_row({fmt_fixed(units::seconds_to_ps(p.amat_s), 1),
                 fmt_fixed(units::joules_to_pj(p.energy_j), 2),
                 fmt_fixed(units::watts_to_mw(p.leakage_w), 1)});
    }
    std::cout << t << "\n";
  }

  // The figure itself, rendered to the terminal.
  AsciiChart chart(72, 22);
  chart.set_title("Figure 2: total energy vs AMAT by process menu");
  chart.set_x_label("AMAT [pS]");
  chart.set_y_label("total energy [pJ]");
  chart.set_log_y(true);
  for (const auto& s : series) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& p : s.points) {
      xs.push_back(units::seconds_to_ps(p.amat_s));
      ys.push_back(units::joules_to_pj(p.energy_j));
    }
    chart.add_series(s.label, std::move(xs), std::move(ys));
  }
  std::cout << chart.render() << "\n";

  // Tabular view: best energy per menu at the paper's AMAT targets.
  const auto targets = explorer.config().amat_targets_s();
  const auto table = explorer.fig2_tuple_table(specs, targets);
  TextTable t("Figure 2 table: best total energy [pJ] per menu at each AMAT "
              "target [pS]");
  std::vector<std::string> header{"AMAT target"};
  for (const auto& spec : specs) {
    header.push_back(core::Explorer::menu_label(spec));
  }
  t.set_header(header);
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    std::vector<std::string> row{
        fmt_fixed(units::seconds_to_ps(targets[ti]), 0)};
    for (std::size_t si = 0; si < specs.size(); ++si) {
      const auto& cell = table[si][ti];
      row.push_back(cell ? fmt_fixed(units::joules_to_pj(cell->energy_j), 1)
                         : "infeasible");
    }
    t.add_row(std::move(row));
  }
  std::cout << t << "\n";

  // Which process menus actually win, and how the components use them.
  {
    const double mid_target = 1.7e-9;
    TextTable w("winning menus and assignments at 1700 pS");
    w.set_header({"menu", "Tox values [A]", "Vth values [V]",
                  "L1 array", "L2 array", "L2 periph"});
    auto pair_str = [](const tech::DeviceKnobs& k) {
      return fmt_fixed(k.vth_v, 2) + "V/" + fmt_fixed(k.tox_a, 0) + "A";
    };
    for (std::size_t si = 0; si < specs.size(); ++si) {
      // Reuse the table computed above (index 4 == 1700 pS).
      const auto& cell = table[si][4];
      if (!cell) {
        w.add_row({core::Explorer::menu_label(specs[si]), "-", "-", "-",
                   "-", "-"});
        continue;
      }
      std::string toxes;
      for (double v : cell->tox_menu) {
        toxes += (toxes.empty() ? "" : ", ") + fmt_fixed(v, 0);
      }
      std::string vths;
      for (double v : cell->vth_menu) {
        vths += (vths.empty() ? "" : ", ") + fmt_fixed(v, 2);
      }
      w.add_row({core::Explorer::menu_label(specs[si]), toxes, vths,
                 pair_str(cell->l1.get(cachemodel::ComponentKind::kCellArray)),
                 pair_str(cell->l2.get(cachemodel::ComponentKind::kCellArray)),
                 pair_str(cell->l2.get(cachemodel::ComponentKind::kDecoder))});
    }
    std::cout << w << "\n";
  }

  // Headline checks, evaluated at the loosest common target.
  const std::size_t last = targets.size() - 1;
  auto energy_of = [&](std::size_t spec_idx) {
    return table[spec_idx][last] ? table[spec_idx][last]->energy_j : 1e9;
  };
  const double e22 = energy_of(0);
  const double e23 = energy_of(1);
  const double e32 = energy_of(2);
  const double e21 = energy_of(3);  // 2 Tox + 1 Vth
  const double e12 = energy_of(4);  // 1 Tox + 2 Vth
  std::cout << "2Tox+3Vth within the best of all menus (<=1% gap): "
            << ((e23 <= std::min({e22, e32, e21, e12}) * 1.01) ? "REPRODUCED"
                                                               : "NOT REPRODUCED")
            << "\n"
            << "dual/dual within 5% of 2Tox+3Vth (dual/dual suffices): "
            << ((e22 <= e23 * 1.05) ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "1Tox+2Vth beats 2Tox+1Vth at the loose end (Vth the better "
               "knob): "
            << ((e12 < e21) ? "REPRODUCED" : "NOT REPRODUCED") << "\n";

  // Deviation note kept honest in the output: at the tightest targets a
  // single (necessarily thin) Tox pays the full gate-leakage floor, so
  // 2Tox+1Vth can win there; the paper's plotted range sits above that
  // regime.  See EXPERIMENTS.md.
  const double tight12 = table[4][0] ? table[4][0]->energy_j : 1e9;
  const double tight21 = table[3][0] ? table[3][0]->energy_j : 1e9;
  if (tight12 > tight21) {
    std::cout << "note: at the tightest target the order inverts "
                 "(gate-leakage floor of a single thin Tox) - documented "
                 "deviation\n";
  }
  return 0;
}
