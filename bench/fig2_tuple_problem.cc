// FIG2 — reproduces Figure 2 of the paper: total energy (pJ) vs AMAT (pS)
// for the entire L1 + L2 + main-memory system, with process menus limited
// to {2Tox+2Vth, 2Tox+3Vth, 3Tox+2Vth, 2Tox+1Vth, 1Tox+2Vth}.  Expected
// shape (paper): 2Tox+3Vth best but nearly tied with 2Tox+2Vth (so dual/dual
// suffices), and a single-Tox/dual-Vth process beats dual-Tox/single-Vth
// (Vth is the more effective knob) over the main AMAT range.
//
// Runs through the public nanocache::api facade: one tuple_menu request per
// menu cardinality, frontier included — the same work a batch JSONL line
// {"kind":"tuple_menu","include_frontier":true,...} performs.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "nanocache/api.h"
#include "util/ascii_chart.h"
#include "util/table.h"

using namespace nanocache;

int main() {
  const auto service = api::Service::create({});
  if (!service) {
    std::cerr << "service: " << service.error().message << "\n";
    return 1;
  }

  // The figure's five menu cardinalities, solved through the facade with
  // the paper's default AMAT targets and the energy/AMAT frontier attached.
  const std::vector<std::pair<int, int>> specs{
      {2, 2}, {2, 3}, {3, 2}, {2, 1}, {1, 2}};
  std::vector<api::TupleMenuResponse> menus;
  for (const auto& [num_tox, num_vth] : specs) {
    api::TupleMenuRequest request;
    request.num_tox = num_tox;
    request.num_vth = num_vth;
    request.include_frontier = true;
    const auto response = (*service)->tuple_menu(request);
    if (!response) {
      std::cerr << "tuple_menu: " << response.error().message << "\n";
      return 1;
    }
    menus.push_back(*response);
  }

  // Frontier series (the figure's five curves).
  for (const auto& m : menus) {
    TextTable t("Figure 2 frontier: " + m.label);
    t.set_header({"AMAT [pS]", "total energy [pJ]", "leakage [mW]"});
    // Thin the print to ~12 rows; the full frontier backs the table below.
    const std::size_t stride = std::max<std::size_t>(1, m.frontier.size() / 12);
    for (std::size_t i = 0; i < m.frontier.size(); i += stride) {
      const auto& p = m.frontier[i];
      t.add_row({fmt_fixed(p.amat_ps, 1), fmt_fixed(p.energy_pj, 2),
                 fmt_fixed(p.leakage_mw, 1)});
    }
    std::cout << t << "\n";
  }

  // The figure itself, rendered to the terminal.
  AsciiChart chart(72, 22);
  chart.set_title("Figure 2: total energy vs AMAT by process menu");
  chart.set_x_label("AMAT [pS]");
  chart.set_y_label("total energy [pJ]");
  chart.set_log_y(true);
  for (const auto& m : menus) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& p : m.frontier) {
      xs.push_back(p.amat_ps);
      ys.push_back(p.energy_pj);
    }
    chart.add_series(m.label, std::move(xs), std::move(ys));
  }
  std::cout << chart.render() << "\n";

  // Tabular view: best energy per menu at the paper's AMAT targets.  Every
  // response carries the same target list, one MenuDesign per target.
  const auto& targets = menus.front().targets;
  TextTable t("Figure 2 table: best total energy [pJ] per menu at each AMAT "
              "target [pS]");
  std::vector<std::string> header{"AMAT target"};
  for (const auto& m : menus) {
    header.push_back(m.label);
  }
  t.set_header(header);
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    std::vector<std::string> row{fmt_fixed(targets[ti].amat_target_ps, 0)};
    for (const auto& m : menus) {
      const auto& cell = m.targets[ti];
      row.push_back(cell.feasible ? fmt_fixed(cell.energy_pj, 1)
                                  : "infeasible");
    }
    t.add_row(std::move(row));
  }
  std::cout << t << "\n";

  // Which process menus actually win, and how the components use them.  The
  // facade lists components in the paper's fixed order, cell array first.
  std::size_t mid = 0;
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    if (std::abs(targets[ti].amat_target_ps - 1700.0) <
        std::abs(targets[mid].amat_target_ps - 1700.0)) {
      mid = ti;
    }
  }
  {
    TextTable w("winning menus and assignments at " +
                fmt_fixed(targets[mid].amat_target_ps, 0) + " pS");
    w.set_header({"menu", "Tox values [A]", "Vth values [V]",
                  "L1 array", "L2 array", "L2 periph"});
    auto pair_str = [](const api::Knobs& k) {
      return fmt_fixed(k.vth_v, 2) + "V/" + fmt_fixed(k.tox_a, 0) + "A";
    };
    for (const auto& m : menus) {
      const auto& cell = m.targets[mid];
      if (!cell.feasible) {
        w.add_row({m.label, "-", "-", "-", "-", "-"});
        continue;
      }
      std::string toxes;
      for (double v : cell.tox_menu_a) {
        toxes += (toxes.empty() ? "" : ", ") + fmt_fixed(v, 0);
      }
      std::string vths;
      for (double v : cell.vth_menu_v) {
        vths += (vths.empty() ? "" : ", ") + fmt_fixed(v, 2);
      }
      w.add_row({m.label, toxes, vths,
                 pair_str(cell.l1_assignment.front().knobs),   // L1 array
                 pair_str(cell.l2_assignment.front().knobs),   // L2 array
                 pair_str(cell.l2_assignment[1].knobs)});      // L2 decoder
    }
    std::cout << w << "\n";
  }

  // Headline checks, evaluated at the loosest common target.
  const std::size_t last = targets.size() - 1;
  auto energy_of = [&](std::size_t spec_idx) {
    const auto& cell = menus[spec_idx].targets[last];
    return cell.feasible ? cell.energy_pj : 1e9;
  };
  const double e22 = energy_of(0);
  const double e23 = energy_of(1);
  const double e32 = energy_of(2);
  const double e21 = energy_of(3);  // 2 Tox + 1 Vth
  const double e12 = energy_of(4);  // 1 Tox + 2 Vth
  std::cout << "2Tox+3Vth within the best of all menus (<=1% gap): "
            << ((e23 <= std::min({e22, e32, e21, e12}) * 1.01) ? "REPRODUCED"
                                                               : "NOT REPRODUCED")
            << "\n"
            << "dual/dual within 5% of 2Tox+3Vth (dual/dual suffices): "
            << ((e22 <= e23 * 1.05) ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "1Tox+2Vth beats 2Tox+1Vth at the loose end (Vth the better "
               "knob): "
            << ((e12 < e21) ? "REPRODUCED" : "NOT REPRODUCED") << "\n";

  // Deviation note kept honest in the output: at the tightest targets a
  // single (necessarily thin) Tox pays the full gate-leakage floor, so
  // 2Tox+1Vth can win there; the paper's plotted range sits above that
  // regime.  See EXPERIMENTS.md.
  const auto& tight12 = menus[4].targets[0];
  const auto& tight21 = menus[3].targets[0];
  if ((tight12.feasible ? tight12.energy_pj : 1e9) >
      (tight21.feasible ? tight21.energy_pj : 1e9)) {
    std::cout << "note: at the tightest target the order inverts "
                 "(gate-leakage floor of a single thin Tox) - documented "
                 "deviation\n";
  }
  return 0;
}
