// PERF — google-benchmark microbenchmarks of the library itself: model
// evaluation, fitting, simulation throughput, and optimizer latency.
#include <benchmark/benchmark.h>

#include "cachemodel/fitted_cache.h"
#include "core/explorer.h"
#include "opt/continuous.h"
#include "opt/schemes.h"
#include "opt/sensitivity.h"
#include "sim/generators.h"
#include "sim/hierarchy.h"

using namespace nanocache;

namespace {

const cachemodel::CacheModel& shared_16k() {
  static core::Explorer explorer;
  return explorer.l1_model(16 * 1024);
}

void BM_CacheEvaluateUniform(benchmark::State& state) {
  const auto& m = shared_16k();
  tech::DeviceKnobs k{0.35, 12.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.evaluate_uniform(k));
    k.vth_v = k.vth_v == 0.35 ? 0.40 : 0.35;  // defeat caching
  }
}
BENCHMARK(BM_CacheEvaluateUniform);

void BM_ComponentEvaluate(benchmark::State& state) {
  const auto& m = shared_16k();
  const tech::DeviceKnobs k{0.30, 11.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.component(cachemodel::ComponentKind::kCellArray, k));
  }
}
BENCHMARK(BM_ComponentEvaluate);

void BM_FittedCacheFit(benchmark::State& state) {
  const auto& m = shared_16k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cachemodel::FittedCacheModel::fit(m, /*vth_steps=*/7, /*tox_steps=*/5));
  }
}
BENCHMARK(BM_FittedCacheFit)->Unit(benchmark::kMillisecond);

void BM_SchemeOptimize(benchmark::State& state) {
  const auto& m = shared_16k();
  const auto eval = opt::structural_evaluator(m);
  const auto grid = opt::KnobGrid::paper_default();
  const auto scheme = static_cast<opt::Scheme>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::optimize_single_cache(eval, grid, scheme, 1.4e-9));
  }
}
BENCHMARK(BM_SchemeOptimize)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughput(benchmark::State& state) {
  sim::TwoLevelHierarchy hier(
      sim::SetAssociativeCache(16 * 1024, 32, 2),
      sim::SetAssociativeCache(1024 * 1024, 64, 8));
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    hier.run(gen, 10'000);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_TraceGeneration(benchmark::State& state) {
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_TupleMenuBestAt(benchmark::State& state) {
  static core::Explorer explorer;
  const auto system = explorer.default_system();
  const opt::TupleMenuSolver solver(system, explorer.config().grid);
  const opt::MenuSpec spec{2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.best_at(spec, 1.7e-9));
  }
}
BENCHMARK(BM_TupleMenuBestAt)->Unit(benchmark::kMillisecond);

void BM_ContinuousOptimizer(benchmark::State& state) {
  static const auto fits =
      cachemodel::FittedCacheModel::fit(shared_16k());
  const auto range = tech::bptm65().knobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_continuous(
        fits, range, opt::Scheme::kPerComponent, 1.4e-9));
  }
}
BENCHMARK(BM_ContinuousOptimizer)->Unit(benchmark::kMillisecond);

void BM_SchemeFrontier(benchmark::State& state) {
  const auto eval = opt::structural_evaluator(shared_16k());
  const auto grid = opt::KnobGrid::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::scheme_frontier(eval, grid, opt::Scheme::kPerComponent));
  }
}
BENCHMARK(BM_SchemeFrontier)->Unit(benchmark::kMillisecond);

void BM_SensitivityMap(benchmark::State& state) {
  const auto eval = opt::structural_evaluator(shared_16k());
  const auto grid = opt::KnobGrid::paper_default();
  const auto range = tech::bptm65().knobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::sensitivity_map(eval, grid, range));
  }
}
BENCHMARK(BM_SensitivityMap)->Unit(benchmark::kMillisecond);

void BM_DecaySimulation(benchmark::State& state) {
  sim::SetAssociativeCache cache(16 * 1024, 32, 2);
  cache.enable_decay(static_cast<std::uint64_t>(state.range(0)));
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    for (int i = 0; i < 10'000; ++i) {
      const auto a = gen.next();
      benchmark::DoNotOptimize(cache.access(a.address, a.is_write));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_DecaySimulation)->Arg(0)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
