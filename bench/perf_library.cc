// PERF — google-benchmark microbenchmarks of the library itself: model
// evaluation, fitting, simulation throughput, and optimizer latency.
//
// Also the parallel-sweep timing harness:
//   perf_library --emit-json [path]
// runs the scheme-comparison and tuple-menu sweeps plus a 100-request
// batched-service workload at 1/2/4/8 threads through the public
// nanocache::api facade, checks the serialized results are byte-identical
// at every thread count, and writes wall time, speedup, batch throughput
// and memoization hit rate as JSON (default: BENCH_parallel_sweep.json).
// It also writes BENCH_pruned_search.json: pruned-vs-exhaustive combo
// accounting (byte-identity + reduction ratio) and a cold/warm disk-cache
// pass over the batch workload (persistent hit rate + byte-identity), and
// BENCH_serve.json: server-mode throughput (requests/s over a unix socket,
// cold service vs warm, single vs 8 concurrent clients), gated on every
// served stream being byte-identical to batch-mode output, and
// BENCH_design_space.json: the v3 design space (associativity x banks x
// node x power gating) swept pruned-vs-exhaustive with per-point combo
// accounting, gated on byte-identity at every point, and
// BENCH_surrogate.json: the surrogate serving tier (precompute +
// table-covered mix served surrogate-warm vs exact), gated on a >= 10x
// throughput ratio and every answer staying within its certified bound.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "api/batch_io.h"
#include "api/metrics_json.h"
#include "api/surrogate_precompute.h"
#include "server/client.h"
#include "server/server.h"
#include "util/metrics.h"
#include "cachemodel/fitted_cache.h"
#include "core/explorer.h"
#include "core/report.h"
#include "nanocache/api.h"
#include "opt/continuous.h"
#include "opt/schemes.h"
#include "opt/sensitivity.h"
#include "sim/generators.h"
#include "sim/hierarchy.h"
#include "util/parallel.h"

using namespace nanocache;

namespace {

const cachemodel::CacheModel& shared_16k() {
  static core::Explorer explorer;
  return explorer.l1_model(16 * 1024);
}

void BM_CacheEvaluateUniform(benchmark::State& state) {
  const auto& m = shared_16k();
  tech::DeviceKnobs k{0.35, 12.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.evaluate_uniform(k));
    k.vth_v = k.vth_v == 0.35 ? 0.40 : 0.35;  // defeat caching
  }
}
BENCHMARK(BM_CacheEvaluateUniform);

void BM_ComponentEvaluate(benchmark::State& state) {
  const auto& m = shared_16k();
  const tech::DeviceKnobs k{0.30, 11.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.component(cachemodel::ComponentKind::kCellArray, k));
  }
}
BENCHMARK(BM_ComponentEvaluate);

void BM_FittedCacheFit(benchmark::State& state) {
  const auto& m = shared_16k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cachemodel::FittedCacheModel::fit(m, /*vth_steps=*/7, /*tox_steps=*/5));
  }
}
BENCHMARK(BM_FittedCacheFit)->Unit(benchmark::kMillisecond);

void BM_SchemeOptimize(benchmark::State& state) {
  const auto& m = shared_16k();
  const auto eval = opt::structural_evaluator(m);
  const auto grid = opt::KnobGrid::paper_default();
  const auto scheme = static_cast<opt::Scheme>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::optimize_single_cache(eval, grid, scheme, 1.4e-9));
  }
}
BENCHMARK(BM_SchemeOptimize)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughput(benchmark::State& state) {
  sim::TwoLevelHierarchy hier(
      sim::SetAssociativeCache(16 * 1024, 32, 2),
      sim::SetAssociativeCache(1024 * 1024, 64, 8));
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    hier.run(gen, 10'000);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_TraceGeneration(benchmark::State& state) {
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_TupleMenuBestAt(benchmark::State& state) {
  static core::Explorer explorer;
  const auto system = explorer.default_system();
  const opt::TupleMenuSolver solver(system, explorer.config().grid);
  const opt::MenuSpec spec{2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.best_at(spec, 1.7e-9));
  }
}
BENCHMARK(BM_TupleMenuBestAt)->Unit(benchmark::kMillisecond);

void BM_ContinuousOptimizer(benchmark::State& state) {
  static const auto fits =
      cachemodel::FittedCacheModel::fit(shared_16k());
  const auto range = tech::bptm65().knobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_continuous(
        fits, range, opt::Scheme::kPerComponent, 1.4e-9));
  }
}
BENCHMARK(BM_ContinuousOptimizer)->Unit(benchmark::kMillisecond);

void BM_SchemeFrontier(benchmark::State& state) {
  const auto eval = opt::structural_evaluator(shared_16k());
  const auto grid = opt::KnobGrid::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::scheme_frontier(eval, grid, opt::Scheme::kPerComponent));
  }
}
BENCHMARK(BM_SchemeFrontier)->Unit(benchmark::kMillisecond);

void BM_SensitivityMap(benchmark::State& state) {
  const auto eval = opt::structural_evaluator(shared_16k());
  const auto grid = opt::KnobGrid::paper_default();
  const auto range = tech::bptm65().knobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::sensitivity_map(eval, grid, range));
  }
}
BENCHMARK(BM_SensitivityMap)->Unit(benchmark::kMillisecond);

void BM_DecaySimulation(benchmark::State& state) {
  sim::SetAssociativeCache cache(16 * 1024, 32, 2);
  cache.enable_decay(static_cast<std::uint64_t>(state.range(0)));
  sim::WorkingSetGenerator::Config cfg;
  cfg.footprint_bytes = 4ull << 20;
  sim::WorkingSetGenerator gen(cfg, 42);
  for (auto _ : state) {
    for (int i = 0; i < 10'000; ++i) {
      const auto a = gen.next();
      benchmark::DoNotOptimize(cache.access(a.address, a.is_write));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_DecaySimulation)->Arg(0)->Arg(1024);

// --- parallel-sweep timing harness ------------------------------------------

/// One timed sweep: returns wall seconds and a result fingerprint (the
/// rendered report, so "identical output" means byte-identical text).
struct SweepSample {
  double wall_s = 0.0;
  std::string fingerprint;
};

template <typename Fn>
SweepSample time_sweep(Fn&& render) {
  // Min of three runs: wall-clock minimum is the standard noise-resistant
  // estimator for a deterministic workload.
  SweepSample s;
  s.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    s.fingerprint = render();
    s.wall_s = std::min(
        s.wall_s, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  }
  return s;
}

/// Fresh facade service (its memo cache starts empty, so every timed run
/// does the same work).
std::shared_ptr<api::Service> fresh_service() {
  auto service = api::Service::create({});
  if (!service) {
    std::cerr << "service: " << service.error().message << "\n";
    std::exit(1);
  }
  return service.value();
}

/// The batch workload: 100 requests mixing duplicated evaluations (request-
/// level dedup), per-target optimizations, and a scheme sweep over the SAME
/// delay targets (sub-evaluation memo hits: the sweep's cells land on the
/// optimize requests' "opt|" entries), plus two overlapping tuple-menu
/// queries (shared "menu|" entries).
std::vector<api::Request> batch_workload() {
  std::vector<api::Request> requests;
  int next_id = 0;
  const auto push = [&](api::Request r) {
    r.id = "r" + std::to_string(next_id++);
    requests.push_back(std::move(r));
  };

  // 70 evals: the paper grid twice (every second one is a pure duplicate).
  for (const double vth : {0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}) {
    for (const double tox : {10.0, 11.0, 12.0, 13.0, 14.0}) {
      for (int dup = 0; dup < 2; ++dup) {
        api::Request r;
        r.kind = api::RequestKind::kEval;
        r.eval.knobs = api::Knobs{vth, tox};
        push(std::move(r));
      }
    }
  }

  // 27 single-cache optimizations: 9 delay targets x 3 schemes...
  std::vector<double> targets_ps;
  for (int i = 0; i < 9; ++i) targets_ps.push_back(1000.0 + 100.0 * i);
  for (const double ps : targets_ps) {
    for (const auto scheme :
         {api::SchemeId::kI, api::SchemeId::kII, api::SchemeId::kIII}) {
      api::Request r;
      r.kind = api::RequestKind::kOptimize;
      r.optimize.scheme = scheme;
      r.optimize.delay.target_ps = ps;
      push(std::move(r));
    }
  }
  // ...plus one scheme sweep over the same targets (27 memo hits).
  {
    api::Request r;
    r.kind = api::RequestKind::kSweep;
    r.sweep.kind = api::SweepKind::kSchemes;
    r.sweep.delay.targets_ps = targets_ps;
    push(std::move(r));
  }

  // 2 tuple-menu queries sharing the 1700 pS design ("menu|" memo hit).
  {
    api::Request r;
    r.kind = api::RequestKind::kTupleMenu;
    r.tuple_menu.delay.targets_ps = {1700.0};
    push(std::move(r));
    api::Request r2;
    r2.kind = api::RequestKind::kTupleMenu;
    r2.tuple_menu.delay.targets_ps = {1700.0, 1900.0};
    push(std::move(r2));
  }
  return requests;
}

int emit_parallel_sweep_json(const std::string& path) {
  // Sweep requests served through the facade; fingerprints are the
  // serialized response bytes, so "identical" means byte-identical JSONL.
  api::Request schemes_request;
  schemes_request.kind = api::RequestKind::kSweep;
  schemes_request.sweep.kind = api::SweepKind::kSchemes;
  const auto render_schemes = [&] {
    return api::response_to_json(fresh_service()->serve(schemes_request));
  };
  api::Request tuple_request;
  tuple_request.kind = api::RequestKind::kTupleMenu;
  tuple_request.tuple_menu.include_frontier = true;
  const auto render_tuples = [&] {
    return api::response_to_json(fresh_service()->serve(tuple_request));
  };

  // Untimed warmup: first-run lazy initialization (allocator arenas) must
  // not inflate the threads=1 baseline.
  render_schemes();
  render_tuples();

  // Rows with more workers than the host has hardware threads cannot show
  // real parallel speedup (the extra workers just time-slice); they are
  // still run — oversubscription must not change bytes or crash — but
  // marked "unmeasured" so downstream tooling (and the CI perf gate) never
  // treats their wall time as a scaling measurement.
  const int hw = par::hardware_threads();
  struct Row {
    std::string name;
    int threads;
    SweepSample sample;
  };
  std::vector<Row> rows;
  bool deterministic = true;
  std::string baseline_schemes, baseline_tuples;
  for (int threads : {1, 2, 4, 8}) {
    par::set_default_threads(threads);
    const auto s = time_sweep(render_schemes);
    const auto t = time_sweep(render_tuples);
    if (threads == 1) {
      baseline_schemes = s.fingerprint;
      baseline_tuples = t.fingerprint;
    } else if (s.fingerprint != baseline_schemes ||
               t.fingerprint != baseline_tuples) {
      deterministic = false;
    }
    rows.push_back({"scheme_comparison", threads, s});
    rows.push_back({"tuple_menu", threads, t});
  }

  // Batched-service workload: throughput per thread count, byte-identity
  // across thread counts, and the t=1 dedup/memoization accounting (the
  // hit/miss split can shift under concurrency; responses cannot).
  const auto workload = batch_workload();
  struct BatchRun {
    int threads;
    double wall_s;
  };
  std::vector<BatchRun> batch_runs;
  api::BatchStats batch_stats;
  std::string batch_baseline;
  for (int threads : {1, 2, 4, 8}) {
    par::set_default_threads(threads);
    const auto service = fresh_service();
    const auto start = std::chrono::steady_clock::now();
    const auto result = service->run_batch(workload);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::string bytes;
    for (const auto& response : result.responses) {
      bytes += api::response_to_json(response);
      bytes += '\n';
    }
    if (threads == 1) {
      batch_baseline = bytes;
      batch_stats = result.stats;
    } else if (bytes != batch_baseline) {
      deterministic = false;
    }
    batch_runs.push_back({threads, wall});
  }
  par::set_default_threads(0);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  // Throughput gate: on a multicore host, the best measured multi-thread
  // batch run must reach at least 0.9x single-thread throughput — the
  // regression this harness exists to catch is parallel mode being SLOWER
  // than serial.  Single-core hosts (and oversubscribed rows) can't
  // measure scaling, so the gate passes vacuously there.
  double single_wall = 0.0;
  double best_multi_wall = std::numeric_limits<double>::infinity();
  for (const auto& r : batch_runs) {
    if (r.threads == 1) single_wall = r.wall_s;
    if (r.threads > 1 && r.threads <= hw) {
      best_multi_wall = std::min(best_multi_wall, r.wall_s);
    }
  }
  const bool gate_applicable =
      hw > 1 && single_wall > 0.0 &&
      best_multi_wall < std::numeric_limits<double>::infinity();
  const double multi_speedup =
      gate_applicable ? single_wall / best_multi_wall : 0.0;
  const bool perf_ok = !gate_applicable || multi_speedup >= 0.9;

  out << "{\n"
      << "  \"hardware_threads\": " << hw << ",\n"
      << "  \"deterministic_across_thread_counts\": "
      << (deterministic ? "true" : "false") << ",\n"
      << "  \"multi_thread_speedup\": " << multi_speedup << ",\n"
      << "  \"perf_gate_applicable\": "
      << (gate_applicable ? "true" : "false") << ",\n"
      << "  \"perf_gate_ok\": " << (perf_ok ? "true" : "false") << ",\n"
      << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    double base = 0.0;
    for (const auto& b : rows) {
      if (b.name == r.name && b.threads == 1) base = b.sample.wall_s;
    }
    out << "    {\"name\": \"" << r.name << "\", \"threads\": " << r.threads
        << ", \"hardware_threads\": " << hw
        << ", \"wall_s\": " << r.sample.wall_s << ", \"speedup\": "
        << (r.sample.wall_s > 0.0 ? base / r.sample.wall_s : 0.0)
        << (r.threads > hw ? ", \"unmeasured\": true" : "") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"batch\": {\n"
      << "    \"requests\": " << batch_stats.requests << ",\n"
      << "    \"unique_requests\": " << batch_stats.unique_requests << ",\n"
      << "    \"request_hits\": " << batch_stats.request_hits << ",\n"
      << "    \"memo_hits\": " << batch_stats.memo_hits << ",\n"
      << "    \"memo_misses\": " << batch_stats.memo_misses << ",\n"
      << "    \"hit_rate\": " << batch_stats.hit_rate() << ",\n"
      << "    \"runs\": [\n";
  for (std::size_t i = 0; i < batch_runs.size(); ++i) {
    const auto& r = batch_runs[i];
    out << "      {\"threads\": " << r.threads
        << ", \"hardware_threads\": " << hw
        << ", \"wall_s\": " << r.wall_s
        << ", \"requests_per_s\": "
        << (r.wall_s > 0.0
                ? static_cast<double>(batch_stats.requests) / r.wall_s
                : 0.0)
        << (r.threads > hw ? ", \"unmeasured\": true" : "")
        << "}" << (i + 1 < batch_runs.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n"
      << "  \"metrics\": " << api::current_metrics_json(&batch_stats) << "\n"
      << "}\n";
  const bool memoized = batch_stats.memo_hits > 0 && batch_stats.hit_rate() > 0;
  std::cout << "wrote " << path << " (deterministic="
            << (deterministic ? "true" : "false")
            << ", memo_hit_rate=" << batch_stats.hit_rate()
            << ", multi_thread_speedup=" << multi_speedup
            << ", perf_gate=" << (perf_ok ? "ok" : "FAIL") << ")\n";
  return deterministic && memoized && perf_ok ? 0 : 1;
}

/// Pruned-search + persistent-cache accounting, written next to the
/// parallel-sweep JSON.  Exit 0 requires byte-identical pruned/exhaustive
/// serializations, the >= 5x scheme-I combo reduction the differential
/// tests enforce, and a warm disk-cache pass that actually hits.
int emit_pruned_search_json(const std::string& path) {
  auto& registry = metrics::Registry::instance();
  auto& evaluated = registry.counter("opt.combos_evaluated");
  auto& skipped = registry.counter("opt.combos_skipped");

  api::Request schemes_request;
  schemes_request.kind = api::RequestKind::kSweep;
  schemes_request.sweep.kind = api::SweepKind::kSchemes;

  const auto run_mode = [&](bool exhaustive, std::uint64_t* combos,
                            std::uint64_t* skips) {
    api::ServiceConfig config;
    config.exhaustive_search = exhaustive;
    auto service = api::Service::create(config);
    if (!service) {
      std::cerr << "service: " << service.error().message << "\n";
      std::exit(1);
    }
    const std::uint64_t evaluated_before = evaluated.value();
    const std::uint64_t skipped_before = skipped.value();
    const std::string bytes =
        api::response_to_json(service.value()->serve(schemes_request));
    *combos = evaluated.value() - evaluated_before;
    *skips = skipped.value() - skipped_before;
    return bytes;
  };

  std::uint64_t pruned_combos = 0, pruned_skips = 0;
  std::uint64_t exhaustive_combos = 0, exhaustive_skips = 0;
  const std::string pruned_bytes = run_mode(false, &pruned_combos,
                                            &pruned_skips);
  const std::string exhaustive_bytes = run_mode(true, &exhaustive_combos,
                                                &exhaustive_skips);
  const bool search_identical = pruned_bytes == exhaustive_bytes;
  const double ratio = pruned_combos > 0
                           ? static_cast<double>(exhaustive_combos) /
                                 static_cast<double>(pruned_combos)
                           : 0.0;

  // Cold/warm persistent-cache pass: same workload, fresh service each
  // time, shared on-disk segment.  The warm run must hit for every unique
  // request and serve byte-identical responses.
  const std::string cache_dir = path + ".cache_tmp";
  std::filesystem::remove_all(cache_dir);
  const auto workload = batch_workload();
  const auto run_cached = [&] {
    api::ServiceConfig config;
    config.cache_dir = cache_dir;
    auto service = api::Service::create(config);
    if (!service) {
      std::cerr << "service: " << service.error().message << "\n";
      std::exit(1);
    }
    return service.value()->run_batch(workload);
  };
  const auto cold = run_cached();
  const auto warm = run_cached();
  bool cache_identical = cold.responses.size() == warm.responses.size();
  if (cache_identical) {
    for (std::size_t i = 0; i < cold.responses.size(); ++i) {
      if (api::response_to_json(cold.responses[i]) !=
          api::response_to_json(warm.responses[i])) {
        cache_identical = false;
        break;
      }
    }
  }
  std::filesystem::remove_all(cache_dir);
  const double warm_hit_rate =
      warm.stats.unique_requests > 0
          ? static_cast<double>(warm.stats.disk_hits) /
                static_cast<double>(warm.stats.unique_requests)
          : 0.0;

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"pruning\": {\n"
      << "    \"exhaustive_combos\": " << exhaustive_combos << ",\n"
      << "    \"pruned_combos\": " << pruned_combos << ",\n"
      << "    \"pruned_combos_skipped\": " << pruned_skips << ",\n"
      << "    \"reduction_ratio\": " << ratio << ",\n"
      << "    \"byte_identical\": " << (search_identical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"disk_cache\": {\n"
      << "    \"requests\": " << warm.stats.requests << ",\n"
      << "    \"unique_requests\": " << warm.stats.unique_requests << ",\n"
      << "    \"cold_disk_hits\": " << cold.stats.disk_hits << ",\n"
      << "    \"cold_disk_misses\": " << cold.stats.disk_misses << ",\n"
      << "    \"warm_disk_hits\": " << warm.stats.disk_hits << ",\n"
      << "    \"warm_disk_misses\": " << warm.stats.disk_misses << ",\n"
      << "    \"warm_hit_rate\": " << warm_hit_rate << ",\n"
      << "    \"byte_identical\": " << (cache_identical ? "true" : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << path << " (reduction_ratio=" << ratio
            << ", warm_disk_hits=" << warm.stats.disk_hits << ")\n";
  const bool ok = search_identical && cache_identical && ratio >= 5.0 &&
                  warm.stats.disk_hits > 0;
  return ok ? 0 : 1;
}

/// The v3 design space swept pruned-vs-exhaustive: one optimize request
/// per sampled (associativity, banks, node, gating) point, served by a
/// pruned and an exhaustive service with per-point combo-counter deltas.
/// Exit 0 requires byte-identical responses at every point.
int emit_design_space_json(const std::string& path) {
  struct Point {
    int associativity;       // 0 = default organization
    std::uint32_t banks;     // 0 = default single bank
    int node_nm;             // 0 = default technology
    bool gated;
    double target_ps;
  };
  // Every v3 axis covered at least once: explicit associativities, a
  // banked point, two non-default nodes, fully associative (generous
  // target: FA tag broadcast is slow by design), and power gating.
  const std::vector<Point> points = {
      {2, 0, 0, false, 3000.0},  {4, 2, 0, false, 3000.0},
      {8, 0, 45, false, 3000.0}, {1, 4, 32, false, 3000.0},
      {-1, 0, 0, false, 200000.0}, {0, 0, 0, true, 1400.0},
  };

  auto& registry = metrics::Registry::instance();
  auto& evaluated = registry.counter("opt.combos_evaluated");

  const auto request_for = [](const Point& p) {
    api::Request r;
    r.kind = api::RequestKind::kOptimize;
    r.optimize.scheme = api::SchemeId::kI;
    r.optimize.delay.target_ps = p.target_ps;
    r.optimize.organization.associativity = p.associativity;
    r.optimize.organization.banks = p.banks;
    r.optimize.node_nm = p.node_nm;
    r.optimize.power_gating.enabled = p.gated;
    if (p.gated) r.optimize.power_gating.perf_loss_budget = 0.1;
    return r;
  };

  const auto run_mode = [&](const api::Request& request, bool exhaustive,
                            std::uint64_t* combos) {
    api::ServiceConfig config;
    config.exhaustive_search = exhaustive;
    auto service = api::Service::create(config);
    if (!service) {
      std::cerr << "service: " << service.error().message << "\n";
      std::exit(1);
    }
    const std::uint64_t before = evaluated.value();
    const std::string bytes =
        api::response_to_json(service.value()->serve(request));
    *combos = evaluated.value() - before;
    return bytes;
  };

  bool all_identical = true;
  std::uint64_t total_pruned = 0, total_exhaustive = 0;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << "{\n  \"design_space\": {\n    \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto request = request_for(p);
    std::uint64_t pruned_combos = 0, exhaustive_combos = 0;
    const std::string pruned = run_mode(request, false, &pruned_combos);
    const std::string exhaustive = run_mode(request, true, &exhaustive_combos);
    const bool identical = pruned == exhaustive;
    all_identical = all_identical && identical;
    total_pruned += pruned_combos;
    total_exhaustive += exhaustive_combos;
    out << "      {\"associativity\": " << p.associativity
        << ", \"banks\": " << p.banks << ", \"node_nm\": " << p.node_nm
        << ", \"power_gating\": " << (p.gated ? "true" : "false")
        << ", \"pruned_combos\": " << pruned_combos
        << ", \"exhaustive_combos\": " << exhaustive_combos
        << ", \"byte_identical\": " << (identical ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  const double ratio = total_pruned > 0
                           ? static_cast<double>(total_exhaustive) /
                                 static_cast<double>(total_pruned)
                           : 0.0;
  out << "    ],\n"
      << "    \"total_pruned_combos\": " << total_pruned << ",\n"
      << "    \"total_exhaustive_combos\": " << total_exhaustive << ",\n"
      << "    \"reduction_ratio\": " << ratio << ",\n"
      << "    \"byte_identical\": " << (all_identical ? "true" : "false")
      << "\n  }\n}\n";
  std::cout << "wrote " << path << " (points=" << points.size()
            << ", reduction_ratio=" << ratio
            << ", byte_identical=" << (all_identical ? "true" : "false")
            << ")\n";
  return all_identical ? 0 : 1;
}

/// Server-mode throughput: the batch workload served over a unix socket,
/// cold service vs warm, one client vs 8 concurrent.  The wall-clock
/// numbers are informational; the exit code gates only on byte-identity of
/// every served stream with batch-mode output.
int emit_serve_json(const std::string& path) {
  const auto workload = batch_workload();
  std::string input;
  for (const auto& request : workload) {
    input += api::request_to_json(request);
    input += '\n';
  }
  // The batch reference from a fresh service: the determinism contract
  // makes it byte-identical to any other service with the same config.
  const std::string expected = [&] {
    std::istringstream in(input);
    std::ostringstream out;
    api::run_batch_jsonl(*fresh_service(), in, out);
    return out.str();
  }();

  server::ServerConfig config;
  config.listen.kind = server::ListenKind::kUnix;
  config.listen.path = path + ".sock";
  std::filesystem::remove(config.listen.path);
  server::Server srv(fresh_service(), std::move(config));
  srv.start();

  const auto drive = [&](int clients, double* wall_s) {
    std::vector<std::string> got(clients);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = server::Client::connect(srv.config().listen);
        client.send(input);
        client.shutdown_write();
        while (auto line = client.read_line()) {
          got[c] += *line;
          got[c] += '\n';
        }
      });
    }
    for (auto& t : threads) t.join();
    *wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (const auto& stream : got) {
      if (stream != expected) return false;
    }
    return true;
  };

  struct Run {
    const char* phase;
    int clients;
    double wall_s = 0.0;
  };
  std::vector<Run> runs = {{"cold", 1}, {"warm", 1}, {"warm_concurrent", 8}};
  bool identical = true;
  for (auto& run : runs) {
    identical = drive(run.clients, &run.wall_s) && identical;
  }
  srv.shutdown();
  srv.wait();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"hardware_threads\": " << par::hardware_threads() << ",\n"
      << "  \"requests_per_client\": " << workload.size() << ",\n"
      << "  \"byte_identical_to_batch\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const double total =
        static_cast<double>(workload.size()) * run.clients;
    out << "    {\"phase\": \"" << run.phase << "\", \"clients\": "
        << run.clients << ", \"requests\": " << static_cast<int>(total)
        << ", \"wall_s\": " << run.wall_s << ", \"requests_per_s\": "
        << (run.wall_s > 0.0 ? total / run.wall_s : 0.0) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << " (byte_identical="
            << (identical ? "true" : "false") << ")\n";
  return identical ? 0 : 1;
}

/// The surrogate serving tier: precompute tables for the default
/// configuration, then serve a table-covered mix (distinct off-lattice
/// evals + distinct optimize targets, so the exact baseline cannot
/// memo-hit across requests) through a surrogate-backed service and
/// through the exact engine.  Exit 0 requires the warm surrogate pass to
/// be >= 10x the exact throughput, every surrogate answer's measured
/// error to stay within its certified bound, and the api.surrogate.*
/// metrics to be live.
int emit_surrogate_json(const std::string& path) {
  const auto table_dir =
      std::filesystem::temp_directory_path() / "nanocache_bench_surrogate";
  std::filesystem::remove_all(table_dir);
  api::PrecomputeOptions options;
  options.stamp = "bench";
  const auto precompute_start = std::chrono::steady_clock::now();
  const auto summary = [&] {
    const auto service = fresh_service();
    return api::precompute_surrogate(*service, table_dir.string(), options);
  }();
  const double precompute_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  precompute_start)
                                  .count();

  // 100 off-lattice evals (L1 and L2) + 100 distinct optimize targets
  // inside the tabulated ladder.  Deterministic irrational-stride offsets
  // keep every request structurally unique.
  std::vector<api::Request> workload;
  for (int i = 0; i < 100; ++i) {
    api::Request r;
    r.kind = api::RequestKind::kEval;
    if (i % 2 == 1) {
      // The wire default size stays 16KB whatever the level, so the 1MB L2
      // the tables cover has to be spelled out.
      r.eval.target.level = api::Level::kL2;
      r.eval.target.size_bytes = 1 << 20;
    }
    const double fv = std::fmod(0.6180339887 * (i + 1), 1.0);
    const double ft = std::fmod(0.7548776662 * (i + 1), 1.0);
    r.eval.knobs.vth_v = 0.2 + 0.3 * (0.02 + 0.96 * fv);
    r.eval.knobs.tox_a = 10.0 + 4.0 * (0.02 + 0.96 * ft);
    r.id = "e" + std::to_string(i);
    workload.push_back(std::move(r));
  }
  for (int i = 0; i < 100; ++i) {
    api::Request r;
    r.kind = api::RequestKind::kOptimize;
    r.optimize.scheme =
        i % 3 == 0 ? api::SchemeId::kI
                   : (i % 3 == 1 ? api::SchemeId::kII : api::SchemeId::kIII);
    r.optimize.delay.target_ps = 1360.0 + 2.6 * i;
    r.id = "o" + std::to_string(i);
    workload.push_back(std::move(r));
  }

  const auto timed_batch = [&](const std::shared_ptr<api::Service>& service,
                               double* wall_s) {
    const auto start = std::chrono::steady_clock::now();
    auto batch = service->run_batch(workload);
    *wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return batch;
  };

  double exact_s = 0.0, cold_s = 0.0, warm_s = 0.0;
  const auto exact = timed_batch(fresh_service(), &exact_s);
  api::ServiceConfig sur_config;
  sur_config.surrogate_dir = table_dir.string();
  auto sur_service = api::Service::create(sur_config);
  if (!sur_service) {
    std::cerr << "service: " << sur_service.error().message << "\n";
    return 1;
  }
  (void)timed_batch(sur_service.value(), &cold_s);
  const auto warm = timed_batch(sur_service.value(), &warm_s);

  // Differential gate: every surrogate answer within its certified bound
  // of the exact engine's answer for the same request.
  std::size_t surrogate_served = 0;
  bool bounds_ok = true;
  double worst_leakage_err = 0.0, worst_leakage_bound = 0.0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const auto& s = warm.responses[i];
    const auto& x = exact.responses[i];
    if (!s.ok || !x.ok) {
      bounds_ok = false;
      continue;
    }
    if (s.served_by != api::ServedBy::kSurrogate) continue;
    ++surrogate_served;
    double err = 0.0;
    if (workload[i].kind == api::RequestKind::kEval) {
      err = std::abs(s.eval.leakage_mw - x.eval.leakage_mw);
      bounds_ok = bounds_ok && err <= s.max_error.leakage_mw &&
                  std::abs(s.eval.access_time_ps - x.eval.access_time_ps) <=
                      s.max_error.access_time_ps &&
                  std::abs(s.eval.dynamic_pj - x.eval.dynamic_pj) <=
                      s.max_error.dynamic_pj;
    } else {
      err = s.optimize.result.leakage_mw - x.optimize.result.leakage_mw;
      bounds_ok = bounds_ok && err >= -1e-12 &&
                  err <= s.max_error.leakage_mw + 1e-12 &&
                  s.optimize.result.access_time_ps <=
                      workload[i].optimize.delay.target_ps;
      err = std::abs(err);
    }
    if (err > worst_leakage_err) {
      worst_leakage_err = err;
      worst_leakage_bound = s.max_error.leakage_mw;
    }
  }

  auto& registry = metrics::Registry::instance();
  const std::uint64_t hits = registry.counter("api.surrogate.hits").value();
  const std::uint64_t tables =
      registry.counter("api.surrogate.tables").value();
  const bool metrics_ok = hits >= surrogate_served && tables > 0;

  const double speedup = warm_s > 0.0 ? exact_s / warm_s : 0.0;
  const double covered = static_cast<double>(surrogate_served) /
                         static_cast<double>(workload.size());
  const bool ok =
      speedup >= 10.0 && bounds_ok && metrics_ok && covered >= 0.9;

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  const auto rps = [&](double wall_s) {
    return wall_s > 0.0 ? static_cast<double>(workload.size()) / wall_s : 0.0;
  };
  out << "{\n  \"surrogate\": {\n"
      << "    \"eval_tables\": " << summary.eval_tables << ",\n"
      << "    \"optimize_tables\": " << summary.optimize_tables << ",\n"
      << "    \"precompute_s\": " << precompute_s << ",\n"
      << "    \"precompute_exact_evals\": " << summary.exact_evals << ",\n"
      << "    \"precompute_exact_optimizes\": " << summary.exact_optimizes
      << ",\n"
      << "    \"requests\": " << workload.size() << ",\n"
      << "    \"served_by_surrogate\": " << surrogate_served << ",\n"
      << "    \"coverage\": " << covered << ",\n"
      << "    \"exact_wall_s\": " << exact_s << ",\n"
      << "    \"exact_requests_per_s\": " << rps(exact_s) << ",\n"
      << "    \"surrogate_cold_wall_s\": " << cold_s << ",\n"
      << "    \"surrogate_warm_wall_s\": " << warm_s << ",\n"
      << "    \"surrogate_warm_requests_per_s\": " << rps(warm_s) << ",\n"
      << "    \"speedup_vs_exact\": " << speedup << ",\n"
      << "    \"worst_leakage_err_mw\": " << worst_leakage_err << ",\n"
      << "    \"worst_leakage_bound_mw\": " << worst_leakage_bound << ",\n"
      << "    \"errors_within_bounds\": " << (bounds_ok ? "true" : "false")
      << ",\n"
      << "    \"surrogate_metrics_live\": " << (metrics_ok ? "true" : "false")
      << "\n  }\n}\n";
  std::cout << "wrote " << path << " (speedup=" << speedup
            << ", coverage=" << covered
            << ", bounds_ok=" << (bounds_ok ? "true" : "false") << ")\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--emit-json") {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_parallel_sweep.json";
      const int sweep_rc = emit_parallel_sweep_json(path);
      const int pruned_rc =
          emit_pruned_search_json("BENCH_pruned_search.json");
      const int serve_rc = emit_serve_json("BENCH_serve.json");
      const int space_rc =
          emit_design_space_json("BENCH_design_space.json");
      const int surrogate_rc = emit_surrogate_json("BENCH_surrogate.json");
      if (sweep_rc != 0) return sweep_rc;
      if (pruned_rc != 0) return pruned_rc;
      if (serve_rc != 0) return serve_rc;
      return space_rc != 0 ? space_rc : surrogate_rc;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
