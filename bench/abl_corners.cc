// ABL-CORNER — process-corner ablation.  The paper characterizes at one
// corner; this bench asks what its scheme-II optimum is worth on off-
// nominal silicon: optimize the 16 KB cache at TT, then re-evaluate the
// same assignment at FF and SS, and compare against assignments optimized
// natively at each corner.
#include <iostream>

#include "core/explorer.h"
#include "tech/corners.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {

struct CornerModel {
  explicit CornerModel(tech::Corner corner)
      : dev(tech::apply_corner(tech::bptm65(), corner)),
        model(cachemodel::l1_organization(16 * 1024, dev),
              tech::DeviceModel(dev.params())) {}
  tech::DeviceModel dev;
  cachemodel::CacheModel model;
};

}  // namespace

int main() {
  const auto grid = opt::KnobGrid::paper_default();
  CornerModel tt(tech::Corner::kTypical);
  CornerModel ff(tech::Corner::kFast);
  CornerModel ss(tech::Corner::kSlow);

  // Timing target from the TT design window.
  const double target =
      opt::min_access_time(opt::structural_evaluator(tt.model), grid,
                           opt::Scheme::kArrayPeriphery) *
      1.35;

  const auto tt_opt = opt::optimize_single_cache(
      opt::structural_evaluator(tt.model), grid,
      opt::Scheme::kArrayPeriphery, target);
  if (!tt_opt) {
    std::cout << "TT target infeasible\n";
    return 1;
  }

  TextTable t("16KB scheme-II assignment across corners (TT target " +
              fmt_fixed(units::seconds_to_ps(target), 0) + " pS)");
  t.set_header({"corner", "TT-opt delay [pS]", "TT-opt leak [mW]",
                "meets TT timing?", "native-opt leak [mW]",
                "guard-band cost"});
  bool ss_violates = false;
  bool ff_leaks_more = false;
  for (auto* cm : {&tt, &ff, &ss}) {
    const auto eval = opt::structural_evaluator(cm->model);
    const auto cross = cm->model.evaluate(tt_opt->assignment);
    const auto native =
        opt::optimize_single_cache(eval, grid, opt::Scheme::kArrayPeriphery,
                                   target);
    const bool meets = cross.access_time_s <= target * (1 + 1e-9);
    const tech::Corner corner =
        cm == &tt ? tech::Corner::kTypical
                  : (cm == &ff ? tech::Corner::kFast : tech::Corner::kSlow);
    if (corner == tech::Corner::kSlow && !meets) ss_violates = true;
    if (corner == tech::Corner::kFast &&
        cross.leakage_w > tt.model.evaluate(tt_opt->assignment).leakage_w *
                              1.5) {
      ff_leaks_more = true;
    }
    std::string cost = "-";
    if (native && meets) {
      cost = fmt_fixed((cross.leakage_w / native->leakage_w - 1.0) * 100.0,
                       1) +
             "%";
    }
    t.add_row({std::string(tech::corner_name(corner)),
               fmt_fixed(units::seconds_to_ps(cross.access_time_s), 1),
               fmt_fixed(units::watts_to_mw(cross.leakage_w), 3),
               meets ? "yes" : "NO",
               native ? fmt_fixed(units::watts_to_mw(native->leakage_w), 3)
                      : "infeasible",
               cost});
  }
  std::cout << t << "\n"
            << "slow silicon breaks the TT-optimized timing: "
            << (ss_violates ? "yes - corner-aware sign-off needed" : "no")
            << "\n"
            << "fast silicon inflates the TT-optimized leakage >1.5x: "
            << (ff_leaks_more ? "yes" : "no") << "\n"
            << "reading: the paper's single-corner optimization is the\n"
            << "right *exploration* methodology, but shipping its knob\n"
            << "assignment requires re-validating at the corners — the\n"
            << "conservative-array structure survives; the absolute Vth\n"
            << "choice is what shifts.\n";
  return 0;
}
