// EXT-SPLIT — extension beyond the paper: the paper models one unified L1;
// the processors of its era used split I/D L1s.  This bench (a) measures
// the I- vs D-side miss behaviour with the simulator (instruction fetches
// are far more cache-friendly), then (b) compares a unified 32 KB L1
// against a split 16+16 KB pair under the same AMAT budget with per-cache
// scheme-II knob optimization — including whether the optimizer exploits
// the I-side's read-only, low-miss nature with different knobs.
#include <iostream>

#include "core/explorer.h"
#include "energy/split_system.h"
#include "sim/generators.h"
#include "sim/hierarchy.h"
#include "sim/suite.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  // --- (a) simulate the split hierarchy on a blended stream -----------------
  sim::InstructionFetchGenerator::Config icfg;
  auto ifetch = sim::InstructionFetchGenerator(icfg, 42);
  auto data = sim::make_workload("intcode");
  sim::SplitL1Hierarchy hier(sim::SetAssociativeCache(16 * 1024, 32, 2),
                             sim::SetAssociativeCache(16 * 1024, 32, 2),
                             sim::SetAssociativeCache(1024 * 1024, 64, 8));
  Rng mix_rng(7);
  const double fi = 0.30;
  for (int i = 0; i < 600'000; ++i) {
    if (mix_rng.uniform() < fi) {
      hier.access_instruction(ifetch.next().address);
    } else {
      const auto a = data->next();
      hier.access_data(a.address, a.is_write);
    }
  }
  const auto& st = hier.stats();
  TextTable sim_t("split 16KB+16KB L1 on a 30% fetch / 70% data stream");
  sim_t.set_header({"side", "references", "miss rate"});
  sim_t.add_row({"L1-I", std::to_string(st.instruction_refs),
                 fmt_fixed(st.l1i_miss_rate() * 100.0, 2) + "%"});
  sim_t.add_row({"L1-D", std::to_string(st.data_refs),
                 fmt_fixed(st.l1d_miss_rate() * 100.0, 2) + "%"});
  sim_t.add_row({"L2 (shared)", std::to_string(st.l2_accesses),
                 fmt_fixed(st.l2_local_miss_rate() * 100.0, 1) + "%"});
  std::cout << sim_t << "\n";
  const bool icache_friendlier = st.l1i_miss_rate() < st.l1d_miss_rate();

  // --- (b) energy comparison under a shared AMAT budget ---------------------
  core::Explorer explorer;
  const auto& l1_split = explorer.l1_model(16 * 1024);
  const auto& l1_unified = explorer.l1_model(32 * 1024);
  const auto& l2 = explorer.l2_model(1024 * 1024);
  energy::SplitMissRates miss;
  miss.instruction_fraction = fi;
  miss.l1i = st.l1i_miss_rate();
  miss.l1d = st.l1d_miss_rate();
  miss.l2_local = explorer.config().miss_curves.l2(1024 * 1024);
  const energy::SplitMemorySystemModel split_sys(l1_split, l1_split, l2,
                                                 miss);
  // Unified: same total capacity; its miss rate blends both streams.
  energy::MissRates unified_miss;
  unified_miss.l1 = fi * miss.l1i + (1 - fi) * miss.l1d;
  unified_miss.l2_local = miss.l2_local;
  const energy::MemorySystemModel unified_sys(l1_unified, l2, unified_miss);

  // Knobs: scheme II per cache at matched per-cache delay pressure.
  const auto& grid = explorer.config().grid;
  auto optimize = [&](const cachemodel::CacheModel& m, double headroom) {
    const auto eval = explorer.evaluator(m);
    const double lo =
        opt::min_access_time(eval, grid, opt::Scheme::kArrayPeriphery);
    return *opt::optimize_single_cache(eval, grid,
                                       opt::Scheme::kArrayPeriphery,
                                       lo * headroom);
  };
  const auto k_split = optimize(l1_split, 1.3);
  const auto k_unified = optimize(l1_unified, 1.3);
  const auto k_l2 = optimize(l2, 1.3);

  const auto e_split = split_sys.evaluate(k_split.assignment,
                                          k_split.assignment,
                                          k_l2.assignment);
  const auto e_unified =
      unified_sys.evaluate(k_unified.assignment, k_l2.assignment);

  TextTable cmp("unified 32KB vs split 16+16KB (same total capacity, "
                "scheme-II knobs at 1.3x headroom)");
  cmp.set_header({"organization", "AMAT [pS]", "leakage [mW]",
                  "energy/access [pJ]"});
  cmp.add_row({"unified 32KB",
               fmt_fixed(units::seconds_to_ps(e_unified.amat_s), 1),
               fmt_fixed(units::watts_to_mw(e_unified.leakage_w), 2),
               fmt_fixed(units::joules_to_pj(e_unified.total_energy_j), 1)});
  cmp.add_row({"split 16+16KB",
               fmt_fixed(units::seconds_to_ps(e_split.amat_s), 1),
               fmt_fixed(units::watts_to_mw(e_split.leakage_w), 2),
               fmt_fixed(units::joules_to_pj(e_split.total_energy_j), 1)});
  std::cout << cmp << "\n";

  std::cout << "instruction stream is far more cache-friendly than data: "
            << (icache_friendlier ? "CONFIRMED" : "NOT CONFIRMED") << "\n"
            << "split L1 is at least competitive at equal capacity: "
            << ((e_split.total_energy_j < e_unified.total_energy_j * 1.1)
                    ? "CONFIRMED"
                    : "NOT CONFIRMED")
            << "\n"
            << "reading: each 16KB half is faster than the 32KB whole, so\n"
            << "the split system reaches a lower AMAT at the same knobs —\n"
            << "the same small-structure advantage that drives the paper's\n"
            << "L1 conclusion, which carries over unchanged to split L1s.\n";
  return 0;
}
