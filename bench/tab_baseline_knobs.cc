// TAB-BASE — baseline comparison the paper positions itself against: its
// refs [1-7] "all focused on subthreshold leakage", i.e. they optimize Vth
// with the oxide fixed.  This bench quantifies what joint (Vth, Tox)
// total-leakage optimization buys over (a) Vth-only and (b) Tox-only
// assignment on the 16 KB cache, per delay target and scheme I.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {
std::string cell(const opt::OptOutcome<opt::SchemeResult>& r) {
  return r ? fmt_fixed(units::watts_to_mw(r->leakage_w), 3) : "infeasible";
}
}  // namespace

int main() {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);
  const auto eval = opt::structural_evaluator(m);

  const auto joint = opt::KnobGrid::paper_default();
  const auto vth_only = opt::KnobGrid::vth_only(12.0);
  const auto tox_only = opt::KnobGrid::tox_only(0.35);

  TextTable t("total-leakage (Vth+Tox) vs single-knob baselines, 16KB, "
              "scheme I");
  t.set_header({"target [pS]", "Vth+Tox [mW]", "Vth-only [mW] (refs 1-7)",
                "Tox-only [mW]", "Vth-only / joint"});
  bool joint_never_worse = true;
  double worst_ratio = 0.0;
  for (double target : explorer.delay_ladder(16 * 1024, 8)) {
    const auto rj = opt::optimize_single_cache(
        eval, joint, opt::Scheme::kPerComponent, target);
    const auto rv = opt::optimize_single_cache(
        eval, vth_only, opt::Scheme::kPerComponent, target);
    const auto rt = opt::optimize_single_cache(
        eval, tox_only, opt::Scheme::kPerComponent, target);
    std::string ratio = "-";
    if (rj && rv) {
      if (rv->leakage_w < rj->leakage_w * 0.999) joint_never_worse = false;
      const double r = rv->leakage_w / rj->leakage_w;
      worst_ratio = std::max(worst_ratio, r);
      ratio = fmt_fixed(r, 2) + "x";
    }
    t.add_row({fmt_fixed(units::seconds_to_ps(target), 0), cell(rj),
               cell(rv), cell(rt), ratio});
  }
  std::cout << t << "\n"
            << "joint optimization never loses to a single-knob baseline: "
            << (joint_never_worse ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "Vth-only leaves up to " << fmt_fixed(worst_ratio, 1)
            << "x leakage on the table - the gate-tunnelling floor at the\n"
            << "pinned Tox is untouchable without the second knob, which is\n"
            << "precisely the paper's case for *total*-leakage "
               "optimization.\n";
  return 0;
}
