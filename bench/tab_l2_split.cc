// TAB-L2B — reproduces the second Section 5 L2 experiment: the L2 gets two
// pairs (core cell array vs peripheral circuitry, Scheme II) and the size
// sweep is repeated.  Expected shape (paper abstract/Section 5): with the
// split, aggressive peripheral knobs beat growing the array, the optimizer
// always sets the array much more conservatively than the periphery, and
// smaller L2s now yield the least total leakage.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {
std::string knobs_str(const tech::DeviceKnobs& k) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << k.vth_v << "V/"
     << std::setprecision(0) << k.tox_a << "A";
  return os.str();
}
}  // namespace

int main() {
  core::Explorer explorer;
  bool optimum_moved_smaller = false;
  bool split_never_worse = true;
  bool array_conservative_all = true;

  for (double headroom : {1.05, 1.15, 1.30}) {
  const double target = explorer.l2_squeeze_target_s(headroom);
  const double target_ps = units::seconds_to_ps(target);

  const auto one_pair = explorer.l2_size_sweep(opt::Scheme::kUniform, target);
  const auto split = explorer.l2_size_sweep(opt::Scheme::kArrayPeriphery,
                                            target);

  TextTable t("Section 5 / L2 with array/periphery split, AMAT target " +
              fmt_fixed(target_ps, 0) + " pS");
  t.set_header({"L2 size", "one-pair leak [mW]", "split leak [mW]",
                "array Vth/Tox", "periph Vth/Tox"});
  const core::SizeSweepRow* best_one = nullptr;
  const core::SizeSweepRow* best_split = nullptr;
  bool array_conservative = true;
  for (std::size_t i = 0; i < split.size(); ++i) {
    const auto& s = split[i];
    const auto& u = one_pair[i];
    if (!s.feasible) {
      t.add_row({fmt_bytes(s.size_bytes),
                 u.feasible ? fmt_fixed(units::watts_to_mw(u.level_leakage_w), 2)
                            : "infeasible",
                 "infeasible", "-", "-"});
      continue;
    }
    const auto& arr =
        s.result.assignment.get(cachemodel::ComponentKind::kCellArray);
    const auto& per =
        s.result.assignment.get(cachemodel::ComponentKind::kDecoder);
    t.add_row({fmt_bytes(s.size_bytes),
               u.feasible ? fmt_fixed(units::watts_to_mw(u.level_leakage_w), 2)
                          : "infeasible",
               fmt_fixed(units::watts_to_mw(s.level_leakage_w), 2),
               knobs_str(arr), knobs_str(per)});
    if (arr.vth_v < per.vth_v || arr.tox_a < per.tox_a) {
      array_conservative = false;
    }
    if (!best_split || s.level_leakage_w < best_split->level_leakage_w) {
      best_split = &s;
    }
    if (u.feasible &&
        (!best_one || u.level_leakage_w < best_one->level_leakage_w)) {
      best_one = &u;
    }
  }
  std::cout << t << "\n";

  if (best_one && best_split) {
    std::cout << "one-pair optimum:  " << fmt_bytes(best_one->size_bytes)
              << " at "
              << fmt_fixed(units::watts_to_mw(best_one->level_leakage_w), 2)
              << " mW\n"
              << "split optimum:     " << fmt_bytes(best_split->size_bytes)
              << " at "
              << fmt_fixed(units::watts_to_mw(best_split->level_leakage_w), 2)
              << " mW\n\n";
    if (best_split->size_bytes < best_one->size_bytes &&
        best_split->level_leakage_w < best_one->level_leakage_w) {
      optimum_moved_smaller = true;
    }
    if (best_split->level_leakage_w > best_one->level_leakage_w * 1.001) {
      split_never_worse = false;
    }
  }
  if (!array_conservative) array_conservative_all = false;
  }  // target loop

  std::cout << "some target moves the split optimum to a smaller L2 with "
               "less leakage: "
            << (optimum_moved_smaller ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n"
            << "split never hurts (Scheme II dominates Scheme III): "
            << (split_never_worse ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
            << "array knobs always at least as conservative as periphery: "
            << (array_conservative_all ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n";
  return 0;
}
